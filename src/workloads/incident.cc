#include "workloads/incident.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "engine/serde.h"

namespace ppa {
namespace {

Status RestoreStringToBatchMap(const std::string& snapshot,
                               std::map<std::string, int64_t>* out) {
  BinaryReader r(snapshot);
  out->clear();
  PPA_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  for (uint64_t i = 0; i < n; ++i) {
    PPA_ASSIGN_OR_RETURN(std::string key, r.GetString());
    PPA_ASSIGN_OR_RETURN(int64_t value, r.GetI64());
    out->emplace(std::move(key), value);
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in map snapshot");
  }
  return OkStatus();
}

std::string SnapshotStringToBatchMap(const std::map<std::string, int64_t>& m) {
  BinaryWriter w;
  w.PutU64(m.size());
  for (const auto& [key, value] : m) {
    w.PutString(key);
    w.PutI64(value);
  }
  return std::move(w).data();
}

void EvictOlderThan(std::map<std::string, int64_t>* m, int64_t min_batch) {
  for (auto it = m->begin(); it != m->end();) {
    if (it->second < min_batch) {
      it = m->erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

IncidentSchedule::IncidentSchedule(const Options& options)
    : options_(options),
      segment_zipf_(static_cast<size_t>(options.num_segments),
                    options.zipf_s) {
  population_.resize(static_cast<size_t>(options_.num_segments));
  for (int s = 0; s < options_.num_segments; ++s) {
    population_[static_cast<size_t>(s)] = std::max(
        1, static_cast<int>(std::lround(segment_zipf_.Pmf(
               static_cast<size_t>(s)) *
               static_cast<double>(options_.num_users))));
  }
}

int64_t IncidentSchedule::IncidentStartingAt(int64_t batch) const {
  if (batch < 0 || batch % options_.incident_period_batches != 0) {
    return -1;
  }
  return batch / options_.incident_period_batches;
}

int IncidentSchedule::SegmentOfIncident(int64_t incident) const {
  // Population-weighted deterministic pick.
  Rng rng(options_.seed ^ Mix64(static_cast<uint64_t>(incident) + 1));
  return static_cast<int>(segment_zipf_.Sample(&rng));
}

bool IncidentSchedule::Jammed(int segment, int64_t batch) const {
  // An incident jams its segment from its start batch for jam_batches.
  const int64_t first =
      std::max<int64_t>(0, (batch - options_.jam_batches + 1) /
                                   options_.incident_period_batches -
                               1);
  const int64_t last = batch / options_.incident_period_batches;
  for (int64_t i = first; i <= last; ++i) {
    const int64_t start = i * options_.incident_period_batches;
    if (start <= batch && batch < start + options_.jam_batches &&
        SegmentOfIncident(i) == segment) {
      return true;
    }
  }
  return false;
}

std::vector<int64_t> IncidentSchedule::IncidentsIn(int64_t from_batch,
                                                   int64_t to_batch) const {
  std::vector<int64_t> ids;
  for (int64_t b = std::max<int64_t>(0, from_batch); b <= to_batch; ++b) {
    const int64_t id = IncidentStartingAt(b);
    if (id >= 0) {
      ids.push_back(id);
    }
  }
  return ids;
}

LocationSource::LocationSource(const IncidentSchedule* schedule,
                               int64_t tuples_per_batch_per_task,
                               uint64_t seed)
    : schedule_(schedule),
      tuples_per_batch_per_task_(tuples_per_batch_per_task),
      seed_(seed),
      user_zipf_(static_cast<size_t>(schedule->options().num_segments),
                 schedule->options().zipf_s) {}

std::vector<Tuple> LocationSource::NextBatch(int64_t batch_index,
                                             int task_index) {
  Rng rng(seed_ ^ Mix64(static_cast<uint64_t>(batch_index) * 104729u +
                        static_cast<uint64_t>(task_index)));
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(tuples_per_batch_per_task_));
  for (int64_t i = 0; i < tuples_per_batch_per_task_; ++i) {
    const int segment = static_cast<int>(user_zipf_.Sample(&rng));
    const bool jammed = schedule_->Jammed(segment, batch_index);
    // Speeds x100: free flow ~ [4000, 6000], jam ~ [200, 1200].
    const int64_t speed =
        jammed ? 200 + static_cast<int64_t>(rng.NextUint64(1000))
               : 4000 + static_cast<int64_t>(rng.NextUint64(2000));
    Tuple t;
    t.key = "s" + std::to_string(segment);
    t.value = speed;
    out.push_back(std::move(t));
  }
  return out;
}

IncidentReportSource::IncidentReportSource(const IncidentSchedule* schedule,
                                           int parallelism)
    : schedule_(schedule), parallelism_(parallelism) {}

std::vector<Tuple> IncidentReportSource::NextBatch(int64_t batch_index,
                                                   int task_index) {
  std::vector<Tuple> out;
  const int64_t incident = schedule_->IncidentStartingAt(batch_index);
  if (incident < 0) {
    return out;
  }
  const int segment = schedule_->SegmentOfIncident(incident);
  const int reporters = schedule_->Population(segment);
  // Reports are spread evenly over the source's tasks.
  const int share = (reporters + parallelism_ - 1 - task_index) / parallelism_;
  out.reserve(static_cast<size_t>(share));
  for (int i = 0; i < share; ++i) {
    Tuple t;
    t.key = "s" + std::to_string(segment);
    t.value = kIncidentValueBase + incident;
    out.push_back(std::move(t));
  }
  return out;
}

SegmentSpeedOperator::SegmentSpeedOperator(int64_t window_batches)
    : window_batches_(window_batches) {}

void SegmentSpeedOperator::ProcessBatch(BatchContext* ctx,
                                        const std::vector<Tuple>& inputs) {
  const int64_t b = ctx->batch_index();
  while (!slices_.empty() && slices_.front().batch <= b - window_batches_) {
    slices_.erase(slices_.begin());
  }
  Slice slice;
  slice.batch = b;
  for (const Tuple& t : inputs) {
    auto& [sum, count] = slice.sum_count[t.key];
    sum += t.value;
    ++count;
  }
  slices_.push_back(std::move(slice));
  // Windowed average per segment seen in this batch.
  for (const auto& [key, sc] : slices_.back().sum_count) {
    (void)sc;
    int64_t sum = 0, count = 0;
    for (const Slice& s : slices_) {
      auto it = s.sum_count.find(key);
      if (it != s.sum_count.end()) {
        sum += it->second.first;
        count += it->second.second;
      }
    }
    if (count > 0) {
      ctx->Emit(key, sum / count);
    }
  }
}

StatusOr<std::string> SegmentSpeedOperator::SnapshotState() {
  BinaryWriter w;
  w.PutU64(slices_.size());
  for (const Slice& s : slices_) {
    w.PutI64(s.batch);
    w.PutU64(s.sum_count.size());
    for (const auto& [key, sc] : s.sum_count) {
      w.PutString(key);
      w.PutI64(sc.first);
      w.PutI64(sc.second);
    }
  }
  return std::move(w).data();
}

Status SegmentSpeedOperator::RestoreState(const std::string& snapshot) {
  BinaryReader r(snapshot);
  slices_.clear();
  PPA_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  for (uint64_t i = 0; i < n; ++i) {
    Slice s;
    PPA_ASSIGN_OR_RETURN(s.batch, r.GetI64());
    PPA_ASSIGN_OR_RETURN(uint64_t entries, r.GetU64());
    for (uint64_t j = 0; j < entries; ++j) {
      PPA_ASSIGN_OR_RETURN(std::string key, r.GetString());
      PPA_ASSIGN_OR_RETURN(int64_t sum, r.GetI64());
      PPA_ASSIGN_OR_RETURN(int64_t count, r.GetI64());
      s.sum_count.emplace(std::move(key), std::make_pair(sum, count));
    }
    slices_.push_back(std::move(s));
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in speed snapshot");
  }
  return OkStatus();
}

void SegmentSpeedOperator::Reset() { slices_.clear(); }

int64_t SegmentSpeedOperator::StateSizeTuples() const {
  int64_t total = 0;
  for (const Slice& s : slices_) {
    total += static_cast<int64_t>(s.sum_count.size());
  }
  return total;
}

DistinctIncidentOperator::DistinctIncidentOperator(int64_t window_batches)
    : window_batches_(window_batches) {}

void DistinctIncidentOperator::ProcessBatch(BatchContext* ctx,
                                            const std::vector<Tuple>& inputs) {
  const int64_t b = ctx->batch_index();
  EvictOlderThan(&seen_, b - window_batches_ + 1);
  for (const Tuple& t : inputs) {
    if (t.value < IncidentReportSource::kIncidentValueBase) {
      continue;  // Not an incident report.
    }
    const std::string dedup_key = t.key + "|" + std::to_string(t.value);
    if (seen_.emplace(dedup_key, b).second) {
      ctx->Emit(t.key, t.value);  // First report of this incident.
    }
  }
}

StatusOr<std::string> DistinctIncidentOperator::SnapshotState() {
  return SnapshotStringToBatchMap(seen_);
}

Status DistinctIncidentOperator::RestoreState(const std::string& snapshot) {
  return RestoreStringToBatchMap(snapshot, &seen_);
}

void DistinctIncidentOperator::Reset() { seen_.clear(); }

int64_t DistinctIncidentOperator::StateSizeTuples() const {
  return static_cast<int64_t>(seen_.size());
}

IncidentJoinOperator::IncidentJoinOperator(int64_t pending_batches,
                                           int64_t jam_threshold_x100,
                                           int64_t speed_freshness_batches)
    : pending_batches_(pending_batches),
      jam_threshold_x100_(jam_threshold_x100),
      speed_freshness_batches_(speed_freshness_batches) {}

void IncidentJoinOperator::ProcessBatch(BatchContext* ctx,
                                        const std::vector<Tuple>& inputs) {
  const int64_t b = ctx->batch_index();
  EvictOlderThan(&pending_, b - pending_batches_ + 1);
  // Expire stale speed observations.
  for (auto it = speed_batch_.begin(); it != speed_batch_.end();) {
    if (it->second < b - speed_freshness_batches_ + 1) {
      latest_speed_.erase(it->first);
      it = speed_batch_.erase(it);
    } else {
      ++it;
    }
  }
  for (const Tuple& t : inputs) {
    if (t.value >= IncidentReportSource::kIncidentValueBase) {
      pending_.emplace(t.key + "|" + std::to_string(t.value), b);
    } else {
      latest_speed_[t.key] = t.value;
      speed_batch_[t.key] = b;
    }
  }
  // Join: a pending incident fires once its segment is observably jammed.
  for (auto it = pending_.begin(); it != pending_.end();) {
    const std::string& dedup_key = it->first;
    const size_t bar = dedup_key.find('|');
    const std::string segment = dedup_key.substr(0, bar);
    const int64_t incident_value =
        std::stoll(dedup_key.substr(bar + 1)) -
        IncidentReportSource::kIncidentValueBase;
    auto speed = latest_speed_.find(segment);
    if (speed != latest_speed_.end() &&
        speed->second < jam_threshold_x100_) {
      ctx->Emit("inc" + std::to_string(incident_value),
                std::stoll(segment.substr(1)));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

StatusOr<std::string> IncidentJoinOperator::SnapshotState() {
  BinaryWriter w;
  w.PutString(SnapshotStringToBatchMap(latest_speed_));
  w.PutString(SnapshotStringToBatchMap(speed_batch_));
  w.PutString(SnapshotStringToBatchMap(pending_));
  return std::move(w).data();
}

Status IncidentJoinOperator::RestoreState(const std::string& snapshot) {
  BinaryReader r(snapshot);
  PPA_ASSIGN_OR_RETURN(std::string speeds, r.GetString());
  PPA_ASSIGN_OR_RETURN(std::string speed_batches, r.GetString());
  PPA_ASSIGN_OR_RETURN(std::string pending, r.GetString());
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in join snapshot");
  }
  PPA_RETURN_IF_ERROR(RestoreStringToBatchMap(speeds, &latest_speed_));
  PPA_RETURN_IF_ERROR(RestoreStringToBatchMap(speed_batches, &speed_batch_));
  return RestoreStringToBatchMap(pending, &pending_);
}

void IncidentJoinOperator::Reset() {
  latest_speed_.clear();
  speed_batch_.clear();
  pending_.clear();
}

int64_t IncidentJoinOperator::StateSizeTuples() const {
  return static_cast<int64_t>(latest_speed_.size() + pending_.size());
}

AlarmDedupOperator::AlarmDedupOperator(int64_t window_batches)
    : window_batches_(window_batches) {}

void AlarmDedupOperator::ProcessBatch(BatchContext* ctx,
                                      const std::vector<Tuple>& inputs) {
  const int64_t b = ctx->batch_index();
  EvictOlderThan(&seen_, b - window_batches_ + 1);
  for (const Tuple& t : inputs) {
    if (seen_.emplace(t.key, b).second) {
      ctx->Emit(t.key, t.value);
    }
  }
}

StatusOr<std::string> AlarmDedupOperator::SnapshotState() {
  return SnapshotStringToBatchMap(seen_);
}

Status AlarmDedupOperator::RestoreState(const std::string& snapshot) {
  return RestoreStringToBatchMap(snapshot, &seen_);
}

void AlarmDedupOperator::Reset() { seen_.clear(); }

int64_t AlarmDedupOperator::StateSizeTuples() const {
  return static_cast<int64_t>(seen_.size());
}

StatusOr<IncidentWorkload> MakeIncidentWorkload(
    const IncidentSchedule::Options& schedule_options,
    int64_t location_rate_per_task, const IncidentParallelism& parallelism) {
  IncidentWorkload w;
  w.schedule_options = schedule_options;
  w.location_rate_per_task = location_rate_per_task;
  TopologyBuilder b;
  w.loc_source = b.AddOperator("loc", parallelism.loc_source);
  w.inc_source = b.AddOperator("inc", parallelism.inc_source);
  w.speed = b.AddOperator("speed", parallelism.speed,
                          InputCorrelation::kIndependent, 0.2);
  w.distinct = b.AddOperator("distinct", parallelism.distinct,
                             InputCorrelation::kIndependent, 0.01);
  w.join = b.AddOperator("join", parallelism.join,
                         InputCorrelation::kCorrelated, 0.05);
  w.alarm = b.AddOperator("alarm", 1, InputCorrelation::kIndependent, 1.0);
  b.Connect(w.loc_source, w.speed, PartitionScheme::kFull);
  b.Connect(w.inc_source, w.distinct, PartitionScheme::kFull);
  b.Connect(w.speed, w.join, PartitionScheme::kFull);
  b.Connect(w.distinct, w.join, PartitionScheme::kFull);
  b.Connect(w.join, w.alarm, parallelism.join >= 2 ? PartitionScheme::kMerge
                                                   : PartitionScheme::kOneToOne);
  b.SetSourceRate(w.loc_source,
                  static_cast<double>(location_rate_per_task) *
                      parallelism.loc_source);
  // Average incident report rate: one incident per period, averaging
  // num_users / num_segments reporters (skew makes hot incidents larger).
  b.SetSourceRate(
      w.inc_source,
      static_cast<double>(schedule_options.num_users) /
          static_cast<double>(schedule_options.num_segments) /
          static_cast<double>(schedule_options.incident_period_batches));
  PPA_ASSIGN_OR_RETURN(w.topo, b.Build());
  return w;
}

Status BindIncidentWorkload(const IncidentWorkload& workload,
                            const IncidentSchedule* schedule,
                            StreamingJob* job) {
  PPA_RETURN_IF_ERROR(job->BindSource(
      workload.loc_source, [schedule, rate = workload.location_rate_per_task] {
        return std::make_unique<LocationSource>(schedule, rate, /*seed=*/99);
      }));
  const int inc_parallelism =
      job->topology().op(workload.inc_source).parallelism;
  PPA_RETURN_IF_ERROR(
      job->BindSource(workload.inc_source, [schedule, inc_parallelism] {
        return std::make_unique<IncidentReportSource>(schedule,
                                                      inc_parallelism);
      }));
  PPA_RETURN_IF_ERROR(job->BindOperator(
      workload.speed, [window = workload.speed_window_batches] {
        return std::make_unique<SegmentSpeedOperator>(window);
      }));
  PPA_RETURN_IF_ERROR(job->BindOperator(
      workload.distinct, [window = workload.pending_batches] {
        return std::make_unique<DistinctIncidentOperator>(window);
      }));
  PPA_RETURN_IF_ERROR(job->BindOperator(
      workload.join, [pending = workload.pending_batches,
                      threshold = workload.jam_threshold_x100] {
        return std::make_unique<IncidentJoinOperator>(pending, threshold);
      }));
  PPA_RETURN_IF_ERROR(job->BindOperator(
      workload.alarm, [window = workload.pending_batches * 4] {
        return std::make_unique<AlarmDedupOperator>(window);
      }));
  return OkStatus();
}

}  // namespace ppa
