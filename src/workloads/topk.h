#ifndef PPA_WORKLOADS_TOPK_H_
#define PPA_WORKLOADS_TOPK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status_or.h"
#include "engine/operator.h"
#include "runtime/streaming_job.h"
#include "topology/topology.h"

namespace ppa {

/// Keeps the latest value observed per key (with a freshness window) and
/// emits the top `k` keys by value every batch. Used for the partial and
/// global top-k stages of Q1.
class TopKOperator : public OperatorFunction {
 public:
  TopKOperator(int k, int64_t freshness_batches);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

 private:
  struct Entry {
    int64_t value = 0;
    int64_t last_batch = 0;
  };

  int k_;
  int64_t freshness_batches_;
  std::map<std::string, Entry> latest_;
};

/// Synthetic stand-in for the WorldCup'98 access log (see DESIGN.md
/// Sec. 3.2): a fixed URL population with Zipfian popularity, partitioned
/// by server id (= source task). Deterministic per (batch, task).
class WorldCupSource : public SourceFunction {
 public:
  struct Options {
    int64_t tuples_per_batch_per_task = 1000;
    int url_population = 2000;
    double zipf_s = 0.8;
    uint64_t seed = 1998;
    /// Non-stationary per-server load (the real trace's servers ramp with
    /// the match schedule): each task's batch volume is modulated by
    /// 1 + amplitude * sin(2*pi * (batch/period + task phase)).
    double rate_wave_amplitude = 0.0;
    int64_t rate_wave_period_batches = 60;
  };

  explicit WorldCupSource(const Options& options);

  std::vector<Tuple> NextBatch(int64_t batch_index, int task_index) override;

 private:
  Options options_;
  ZipfGenerator zipf_;
};

/// Q1 (Sec. VI-B): hierarchical top-100 aggregation over the access log.
/// src(8) --full--> count(8) --full--> merge(4) --merge--> top(1).
struct TopKWorkload {
  Topology topo;
  OperatorId source = kInvalidOperatorId;
  OperatorId count = kInvalidOperatorId;
  OperatorId merge = kInvalidOperatorId;
  OperatorId top = kInvalidOperatorId;
  WorldCupSource::Options source_options;
  int64_t count_window_batches = 30;
  int k = 100;
};

/// Parallelism of the Q1 stages; the defaults match the evaluation, the
/// reduced preset keeps the optimal DP planner tractable (its complexity is
/// exponential in the MC-tree count, Sec. IV-A).
struct TopKParallelism {
  int source = 8;
  int count = 8;
  int merge = 4;

  static TopKParallelism Reduced() { return TopKParallelism{4, 4, 2}; }
};

/// Builds the Q1 hierarchical top-k topology over the WorldCup-like log
/// plus its operator bindings (Sec. VI-B).
StatusOr<TopKWorkload> MakeTopKWorkload(
    const WorldCupSource::Options& source_options = {},
    int64_t count_window_batches = 30, int k = 100,
    const TopKParallelism& parallelism = {});

/// Binds the workload's sources and operators onto `job`.
Status BindTopKWorkload(const TopKWorkload& workload, StreamingJob* job);

}  // namespace ppa

#endif  // PPA_WORKLOADS_TOPK_H_
