#ifndef PPA_WORKLOADS_SYNTHETIC_RECOVERY_H_
#define PPA_WORKLOADS_SYNTHETIC_RECOVERY_H_

#include <memory>

#include "common/status_or.h"
#include "engine/operator.h"
#include "runtime/streaming_job.h"
#include "topology/topology.h"

namespace ppa {

/// The synthetic recovery-efficiency workload of Sec. VI-A (Fig. 6): one
/// source operator with 16 tasks feeding a chain of 4 sliding-window
/// operators with parallelism 8/4/2/1 via merge partitioning (each task
/// drains two upstream tasks). Every synthetic operator keeps a sliding
/// window of `window_batches` batches (1-second sliding step) and has
/// selectivity 0.5.
struct SyntheticRecoveryWorkload {
  Topology topo;
  OperatorId source = kInvalidOperatorId;
  OperatorId o1 = kInvalidOperatorId;
  OperatorId o2 = kInvalidOperatorId;
  OperatorId o3 = kInvalidOperatorId;
  OperatorId o4 = kInvalidOperatorId;
  /// Per-source-task tuple rate (the paper's 1000 / 2000 tuples/s).
  double rate_per_source_task = 1000.0;
  int64_t window_batches = 10;
};

/// Builds the Fig. 6 topology.
StatusOr<SyntheticRecoveryWorkload> MakeSyntheticRecoveryWorkload(
    double rate_per_source_task, int64_t window_batches);

/// Binds sources and operators of the workload on `job` (which must have
/// been constructed from workload.topo).
Status BindSyntheticRecoveryWorkload(const SyntheticRecoveryWorkload& workload,
                                     StreamingJob* job);

/// Deterministic uniform-key source used by the synthetic workload: task
/// `i` emits `tuples_per_batch` tuples per batch with keys drawn from a
/// fixed population, reproducible per (task, batch).
class SyntheticSource : public SourceFunction {
 public:
  SyntheticSource(int64_t tuples_per_batch, int key_space, uint64_t seed);

  std::vector<Tuple> NextBatch(int64_t batch_index, int task_index) override;

 private:
  int64_t tuples_per_batch_;
  int key_space_;
  uint64_t seed_;
};

/// Places the workload the way the paper does: 16 source tasks on 4 nodes
/// (4 each), the 15 synthetic tasks on 15 dedicated nodes (1 each). The
/// job's cluster must have at least 19 worker nodes. Returns the list of
/// the 15 nodes hosting synthetic tasks (the correlated-failure targets).
StatusOr<std::vector<int>> PlaceSyntheticRecoveryWorkload(
    const SyntheticRecoveryWorkload& workload, StreamingJob* job);

}  // namespace ppa

#endif  // PPA_WORKLOADS_SYNTHETIC_RECOVERY_H_
