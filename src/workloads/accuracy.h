#ifndef PPA_WORKLOADS_ACCURACY_H_
#define PPA_WORKLOADS_ACCURACY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "runtime/streaming_job.h"

namespace ppa {

/// Keeps only records that met their real-time deadline: a record of batch
/// b counts as timely iff it became available within `max_delay_batches`
/// batch intervals of b's end. Recovery replay delivers old batches late;
/// the paper's tentative-output evaluation is about what the user sees *in
/// time*, so accuracy over a failure window should be computed on the
/// timely subset.
std::vector<SinkRecord> FilterTimely(const std::vector<SinkRecord>& records,
                                     Duration batch_interval,
                                     int64_t max_delay_batches);

/// The distinct keys a sink emitted for batches in [from_batch, to_batch].
std::set<std::string> SinkKeySet(const std::vector<SinkRecord>& records,
                                 int64_t from_batch, int64_t to_batch);

/// Per-batch key sets of the sink output.
std::map<int64_t, std::set<std::string>> SinkKeySetsByBatch(
    const std::vector<SinkRecord>& records, int64_t from_batch,
    int64_t to_batch);

/// Q1's accuracy function (Sec. VI-B): |ST n SA| / |SA| averaged over
/// batches — per batch, the tentative top-k set is compared against the
/// failure-free run's top-k set. Batches where the reference is empty are
/// skipped; returns 1.0 if every batch is skipped.
[[nodiscard]] double PerBatchSetAccuracy(const std::vector<SinkRecord>& test,
                                         const std::vector<SinkRecord>& reference,
                                         int64_t from_batch, int64_t to_batch);

/// Q2's accuracy function: |IT n IA| / |IA| where IT/IA are the distinct
/// keys (incident alarms) emitted over the whole window.
[[nodiscard]] double DistinctSetAccuracy(const std::vector<SinkRecord>& test,
                                         const std::vector<SinkRecord>& reference,
                                         int64_t from_batch, int64_t to_batch);

}  // namespace ppa

#endif  // PPA_WORKLOADS_ACCURACY_H_
