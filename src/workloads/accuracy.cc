#include "workloads/accuracy.h"

#include <algorithm>

namespace ppa {

std::vector<SinkRecord> FilterTimely(const std::vector<SinkRecord>& records,
                                     Duration batch_interval,
                                     int64_t max_delay_batches) {
  std::vector<SinkRecord> timely;
  timely.reserve(records.size());
  for (const SinkRecord& r : records) {
    const TimePoint deadline =
        TimePoint::Zero() +
        batch_interval * (r.tuple.batch + 1 + max_delay_batches);
    if (r.emitted_at <= deadline) {
      timely.push_back(r);
    }
  }
  return timely;
}

std::set<std::string> SinkKeySet(const std::vector<SinkRecord>& records,
                                 int64_t from_batch, int64_t to_batch) {
  std::set<std::string> keys;
  for (const SinkRecord& r : records) {
    if (r.tuple.batch >= from_batch && r.tuple.batch <= to_batch) {
      keys.insert(r.tuple.key);
    }
  }
  return keys;
}

std::map<int64_t, std::set<std::string>> SinkKeySetsByBatch(
    const std::vector<SinkRecord>& records, int64_t from_batch,
    int64_t to_batch) {
  std::map<int64_t, std::set<std::string>> by_batch;
  for (const SinkRecord& r : records) {
    if (r.tuple.batch >= from_batch && r.tuple.batch <= to_batch) {
      by_batch[r.tuple.batch].insert(r.tuple.key);
    }
  }
  return by_batch;
}

double PerBatchSetAccuracy(const std::vector<SinkRecord>& test,
                           const std::vector<SinkRecord>& reference,
                           int64_t from_batch, int64_t to_batch) {
  const auto test_sets = SinkKeySetsByBatch(test, from_batch, to_batch);
  const auto ref_sets = SinkKeySetsByBatch(reference, from_batch, to_batch);
  double total = 0.0;
  int batches = 0;
  for (const auto& [batch, ref] : ref_sets) {
    if (ref.empty()) {
      continue;
    }
    auto it = test_sets.find(batch);
    size_t hits = 0;
    if (it != test_sets.end()) {
      for (const std::string& key : it->second) {
        hits += ref.count(key);
      }
    }
    total += static_cast<double>(hits) / static_cast<double>(ref.size());
    ++batches;
  }
  return batches == 0 ? 1.0 : total / batches;
}

double DistinctSetAccuracy(const std::vector<SinkRecord>& test,
                           const std::vector<SinkRecord>& reference,
                           int64_t from_batch, int64_t to_batch) {
  const std::set<std::string> t = SinkKeySet(test, from_batch, to_batch);
  const std::set<std::string> ref =
      SinkKeySet(reference, from_batch, to_batch);
  if (ref.empty()) {
    return 1.0;
  }
  size_t hits = 0;
  for (const std::string& key : t) {
    hits += ref.count(key);
  }
  return static_cast<double>(hits) / static_cast<double>(ref.size());
}

}  // namespace ppa
