#include "workloads/synthetic_recovery.h"

#include <string>

#include "common/hash.h"
#include "engine/operators.h"

namespace ppa {

SyntheticSource::SyntheticSource(int64_t tuples_per_batch, int key_space,
                                 uint64_t seed)
    : tuples_per_batch_(tuples_per_batch),
      key_space_(key_space),
      seed_(seed) {}

std::vector<Tuple> SyntheticSource::NextBatch(int64_t batch_index,
                                              int task_index) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(tuples_per_batch_));
  for (int64_t i = 0; i < tuples_per_batch_; ++i) {
    const uint64_t h =
        Mix64(seed_ ^ Mix64(static_cast<uint64_t>(batch_index) * 1315423911u +
                            static_cast<uint64_t>(task_index) * 2654435761u +
                            static_cast<uint64_t>(i)));
    Tuple t;
    t.key = "k" + std::to_string(h % static_cast<uint64_t>(key_space_));
    t.value = static_cast<int64_t>(h % 1000);
    out.push_back(std::move(t));
  }
  return out;
}

StatusOr<SyntheticRecoveryWorkload> MakeSyntheticRecoveryWorkload(
    double rate_per_source_task, int64_t window_batches) {
  SyntheticRecoveryWorkload w;
  w.rate_per_source_task = rate_per_source_task;
  w.window_batches = window_batches;
  TopologyBuilder b;
  w.source = b.AddOperator("src", 16);
  w.o1 = b.AddOperator("O1", 8, InputCorrelation::kIndependent, 0.5);
  w.o2 = b.AddOperator("O2", 4, InputCorrelation::kIndependent, 0.5);
  w.o3 = b.AddOperator("O3", 2, InputCorrelation::kIndependent, 0.5);
  w.o4 = b.AddOperator("O4", 1, InputCorrelation::kIndependent, 0.5);
  b.Connect(w.source, w.o1, PartitionScheme::kMerge);
  b.Connect(w.o1, w.o2, PartitionScheme::kMerge);
  b.Connect(w.o2, w.o3, PartitionScheme::kMerge);
  b.Connect(w.o3, w.o4, PartitionScheme::kMerge);
  b.SetSourceRate(w.source, rate_per_source_task * 16);
  PPA_ASSIGN_OR_RETURN(w.topo, b.Build());
  return w;
}

Status BindSyntheticRecoveryWorkload(const SyntheticRecoveryWorkload& workload,
                                     StreamingJob* job) {
  const int64_t per_batch = static_cast<int64_t>(
      workload.rate_per_source_task *
      job->config().batch_interval.seconds());
  PPA_RETURN_IF_ERROR(job->BindSource(workload.source, [per_batch] {
    return std::make_unique<SyntheticSource>(per_batch, /*key_space=*/1024,
                                             /*seed=*/42);
  }));
  for (OperatorId op : {workload.o1, workload.o2, workload.o3, workload.o4}) {
    PPA_RETURN_IF_ERROR(
        job->BindOperator(op, [window = workload.window_batches] {
          return std::make_unique<SlidingWindowAggregateOperator>(
              window, /*selectivity=*/0.5);
        }));
  }
  return OkStatus();
}

StatusOr<std::vector<int>> PlaceSyntheticRecoveryWorkload(
    const SyntheticRecoveryWorkload& workload, StreamingJob* job) {
  Cluster& cluster = job->cluster();
  if (cluster.num_workers() < 19) {
    return InvalidArgument(
        "synthetic recovery placement needs >= 19 worker nodes");
  }
  const Topology& topo = job->topology();
  // Source tasks: 4 per node on nodes 0-3.
  for (int i = 0; i < 16; ++i) {
    PPA_RETURN_IF_ERROR(
        cluster.PlacePrimary(topo.op(workload.source).tasks[i], i / 4));
  }
  // Synthetic tasks: one per node on nodes 4-18.
  std::vector<int> synthetic_nodes;
  int node = 4;
  for (OperatorId op : {workload.o1, workload.o2, workload.o3, workload.o4}) {
    for (TaskId t : topo.op(op).tasks) {
      PPA_RETURN_IF_ERROR(cluster.PlacePrimary(t, node));
      synthetic_nodes.push_back(node);
      ++node;
    }
  }
  return synthetic_nodes;
}

}  // namespace ppa
