#include "topology/topology.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/logging.h"

namespace ppa {

std::string_view PartitionSchemeToString(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kOneToOne:
      return "one-to-one";
    case PartitionScheme::kSplit:
      return "split";
    case PartitionScheme::kMerge:
      return "merge";
    case PartitionScheme::kFull:
      return "full";
  }
  return "?";
}

std::string_view InputCorrelationToString(InputCorrelation correlation) {
  switch (correlation) {
    case InputCorrelation::kIndependent:
      return "independent";
    case InputCorrelation::kCorrelated:
      return "correlated";
  }
  return "?";
}

StatusOr<PartitionScheme> Topology::EdgeScheme(OperatorId from,
                                               OperatorId to) const {
  for (const StreamEdge& e : edges_) {
    if (e.from == from && e.to == to) {
      return e.scheme;
    }
  }
  std::ostringstream oss;
  oss << "no edge between operators " << from << " and " << to;
  return NotFound(oss.str());
}

std::string Topology::TaskLabel(TaskId id) const {
  const TaskInfo& t = task(id);
  std::ostringstream oss;
  oss << op(t.op).name << "[" << t.index_in_op << "]";
  return oss.str();
}

Status Topology::SetSourceRate(OperatorId op_id, double total_rate) {
  if (op_id < 0 || op_id >= num_operators()) {
    return InvalidArgument("SetSourceRate: bad operator id");
  }
  if (!operators_[op_id].upstream.empty()) {
    return InvalidArgument("SetSourceRate: operator is not a source");
  }
  if (total_rate < 0) {
    return InvalidArgument("SetSourceRate: negative rate");
  }
  source_rates_[op_id] = total_rate;
  return OkStatus();
}

Status Topology::SetTaskWeight(TaskId task_id, double weight) {
  if (task_id < 0 || task_id >= num_tasks()) {
    return InvalidArgument("SetTaskWeight: bad task id");
  }
  if (weight <= 0) {
    return InvalidArgument("SetTaskWeight: weight must be positive");
  }
  tasks_[task_id].weight = weight;
  return OkStatus();
}

void Topology::RecomputeRates() {
  for (Substream& s : substreams_) {
    s.rate = 0.0;
  }
  for (OperatorId op_id : topo_order_) {
    OperatorInfo& oi = operators_[op_id];
    if (oi.upstream.empty()) {
      // Source operator: divide the configured aggregate rate among tasks
      // proportionally to their weights.
      double weight_sum = 0.0;
      for (TaskId t : oi.tasks) {
        weight_sum += tasks_[t].weight;
      }
      for (TaskId t : oi.tasks) {
        tasks_[t].output_rate =
            weight_sum > 0
                ? source_rates_[op_id] * tasks_[t].weight / weight_sum
                : 0.0;
      }
    } else {
      for (TaskId t : oi.tasks) {
        double in_rate = 0.0;
        for (int si : tasks_[t].in_substreams) {
          in_rate += substreams_[si].rate;
        }
        tasks_[t].output_rate = oi.selectivity * in_rate;
      }
    }
    // Distribute each task's output over its outgoing substreams, grouped by
    // downstream operator: within one downstream edge, the split follows the
    // receiving tasks' weights.
    for (TaskId t : oi.tasks) {
      // Weight sums per downstream operator for this task's fan-out.
      std::vector<std::pair<OperatorId, double>> weight_by_op;
      for (int si : tasks_[t].out_substreams) {
        const Substream& s = substreams_[si];
        double w = tasks_[s.to].weight;
        auto it = std::find_if(weight_by_op.begin(), weight_by_op.end(),
                               [&](const auto& p) { return p.first == s.to_op; });
        if (it == weight_by_op.end()) {
          weight_by_op.emplace_back(s.to_op, w);
        } else {
          it->second += w;
        }
      }
      for (int si : tasks_[t].out_substreams) {
        Substream& s = substreams_[si];
        auto it = std::find_if(weight_by_op.begin(), weight_by_op.end(),
                               [&](const auto& p) { return p.first == s.to_op; });
        double denom = it->second;
        s.rate = denom > 0
                     ? tasks_[t].output_rate * tasks_[s.to].weight / denom
                     : 0.0;
      }
    }
  }
}

OperatorId TopologyBuilder::AddOperator(std::string name, int parallelism,
                                        InputCorrelation correlation,
                                        double selectivity) {
  operators_.push_back(PendingOperator{std::move(name), parallelism,
                                       correlation, selectivity});
  return static_cast<OperatorId>(operators_.size() - 1);
}

TopologyBuilder& TopologyBuilder::Connect(OperatorId from, OperatorId to,
                                          PartitionScheme scheme) {
  edges_.push_back(StreamEdge{from, to, scheme});
  return *this;
}

TopologyBuilder& TopologyBuilder::SetSourceRate(OperatorId op,
                                                double total_rate) {
  source_rates_.emplace_back(op, total_rate);
  return *this;
}

TopologyBuilder& TopologyBuilder::SetTaskWeight(OperatorId op, int index,
                                                double weight) {
  weights_.push_back(PendingWeight{op, index, weight});
  return *this;
}

StatusOr<Topology> TopologyBuilder::Build() const {
  const int n = static_cast<int>(operators_.size());
  if (n == 0) {
    return InvalidArgument("topology has no operators");
  }
  for (int i = 0; i < n; ++i) {
    if (operators_[i].parallelism < 1) {
      return InvalidArgument("operator '" + operators_[i].name +
                             "' has parallelism < 1");
    }
    if (operators_[i].selectivity < 0) {
      return InvalidArgument("operator '" + operators_[i].name +
                             "' has negative selectivity");
    }
  }
  // Validate edges.
  for (const StreamEdge& e : edges_) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      return InvalidArgument("edge references unknown operator");
    }
    if (e.from == e.to) {
      return InvalidArgument("operator '" + operators_[e.from].name +
                             "' cannot subscribe to itself");
    }
    const int n1 = operators_[e.from].parallelism;
    const int n2 = operators_[e.to].parallelism;
    switch (e.scheme) {
      case PartitionScheme::kOneToOne:
        if (n1 != n2) {
          return InvalidArgument(
              "one-to-one edge requires equal parallelism (" +
              operators_[e.from].name + " -> " + operators_[e.to].name + ")");
        }
        break;
      case PartitionScheme::kSplit:
        if (n2 % n1 != 0 || n2 / n1 < 2) {
          return InvalidArgument(
              "split edge requires N2 = M*N1 with M >= 2 (" +
              operators_[e.from].name + " -> " + operators_[e.to].name + ")");
        }
        break;
      case PartitionScheme::kMerge:
        if (n1 % n2 != 0 || n1 / n2 < 2) {
          return InvalidArgument(
              "merge edge requires N1 = M*N2 with M >= 2 (" +
              operators_[e.from].name + " -> " + operators_[e.to].name + ")");
        }
        break;
      case PartitionScheme::kFull:
        break;
    }
  }
  // Duplicate edges are disallowed (an operator subscribes to a given
  // upstream stream once).
  for (size_t i = 0; i < edges_.size(); ++i) {
    for (size_t j = i + 1; j < edges_.size(); ++j) {
      if (edges_[i].from == edges_[j].from && edges_[i].to == edges_[j].to) {
        return InvalidArgument("duplicate edge between operators");
      }
    }
  }

  Topology topo;
  topo.edges_ = edges_;
  topo.operators_.resize(n);
  topo.source_rates_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    OperatorInfo& oi = topo.operators_[i];
    oi.id = i;
    oi.name = operators_[i].name;
    oi.parallelism = operators_[i].parallelism;
    oi.correlation = operators_[i].correlation;
    oi.selectivity = operators_[i].selectivity;
  }
  for (const StreamEdge& e : edges_) {
    topo.operators_[e.to].upstream.push_back(e.from);
    topo.operators_[e.from].downstream.push_back(e.to);
  }

  // Topological order (Kahn); also detects cycles.
  {
    std::vector<int> indegree(n, 0);
    for (const StreamEdge& e : edges_) {
      ++indegree[e.to];
    }
    std::queue<OperatorId> ready;
    for (int i = 0; i < n; ++i) {
      if (indegree[i] == 0) {
        ready.push(i);
      }
    }
    while (!ready.empty()) {
      OperatorId id = ready.front();
      ready.pop();
      topo.topo_order_.push_back(id);
      for (OperatorId down : topo.operators_[id].downstream) {
        if (--indegree[down] == 0) {
          ready.push(down);
        }
      }
    }
    if (static_cast<int>(topo.topo_order_.size()) != n) {
      return InvalidArgument("topology contains a cycle");
    }
  }

  for (int i = 0; i < n; ++i) {
    if (topo.operators_[i].upstream.empty()) {
      topo.sources_.push_back(i);
    }
    if (topo.operators_[i].downstream.empty()) {
      topo.sinks_.push_back(i);
    }
  }

  // Expand tasks.
  for (int i = 0; i < n; ++i) {
    OperatorInfo& oi = topo.operators_[i];
    for (int k = 0; k < oi.parallelism; ++k) {
      TaskInfo t;
      t.id = static_cast<TaskId>(topo.tasks_.size());
      t.op = i;
      t.index_in_op = k;
      oi.tasks.push_back(t.id);
      topo.tasks_.push_back(std::move(t));
    }
  }

  // Expand substreams per edge scheme.
  for (const StreamEdge& e : edges_) {
    const OperatorInfo& a = topo.operators_[e.from];
    const OperatorInfo& b = topo.operators_[e.to];
    const int n1 = a.parallelism;
    const int n2 = b.parallelism;
    auto add = [&](int i, int j) {
      Substream s;
      s.from = a.tasks[i];
      s.to = b.tasks[j];
      s.from_op = e.from;
      s.to_op = e.to;
      int idx = static_cast<int>(topo.substreams_.size());
      topo.substreams_.push_back(s);
      topo.tasks_[s.from].out_substreams.push_back(idx);
      topo.tasks_[s.to].in_substreams.push_back(idx);
    };
    switch (e.scheme) {
      case PartitionScheme::kOneToOne:
        for (int i = 0; i < n1; ++i) {
          add(i, i);
        }
        break;
      case PartitionScheme::kSplit: {
        const int m2 = n2 / n1;
        for (int i = 0; i < n1; ++i) {
          for (int j = i * m2; j < (i + 1) * m2; ++j) {
            add(i, j);
          }
        }
        break;
      }
      case PartitionScheme::kMerge: {
        const int m1 = n1 / n2;
        for (int j = 0; j < n2; ++j) {
          for (int i = j * m1; i < (j + 1) * m1; ++i) {
            add(i, j);
          }
        }
        break;
      }
      case PartitionScheme::kFull:
        for (int i = 0; i < n1; ++i) {
          for (int j = 0; j < n2; ++j) {
            add(i, j);
          }
        }
        break;
    }
  }

  // Every non-source operator must have at least one upstream (trivially
  // true) and be reachable from a source; with a DAG and Kahn order this
  // holds iff every operator with indegree 0 is intended as a source, which
  // we accept. Reject operators that are completely isolated in a
  // multi-operator topology, though.
  if (n > 1) {
    for (int i = 0; i < n; ++i) {
      if (topo.operators_[i].upstream.empty() &&
          topo.operators_[i].downstream.empty()) {
        return InvalidArgument("operator '" + topo.operators_[i].name +
                               "' is disconnected");
      }
    }
  }

  // Default source rates and overrides.
  for (OperatorId s : topo.sources_) {
    topo.source_rates_[s] = 1000.0;
  }
  for (const auto& [op_id, rate] : source_rates_) {
    if (op_id < 0 || op_id >= n) {
      return InvalidArgument("SetSourceRate: bad operator id");
    }
    if (!topo.operators_[op_id].upstream.empty()) {
      return InvalidArgument("SetSourceRate: operator '" +
                             topo.operators_[op_id].name +
                             "' is not a source");
    }
    if (rate < 0) {
      return InvalidArgument("SetSourceRate: negative rate");
    }
    topo.source_rates_[op_id] = rate;
  }
  for (const PendingWeight& w : weights_) {
    if (w.op < 0 || w.op >= n || w.index < 0 ||
        w.index >= topo.operators_[w.op].parallelism) {
      return InvalidArgument("SetTaskWeight: bad operator/task index");
    }
    if (w.weight <= 0) {
      return InvalidArgument("SetTaskWeight: weight must be positive");
    }
    topo.tasks_[topo.operators_[w.op].tasks[w.index]].weight = w.weight;
  }

  topo.RecomputeRates();
  return topo;
}

}  // namespace ppa
