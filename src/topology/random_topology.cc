#include "topology/random_topology.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace ppa {
namespace {

/// True if an edge from parallelism n1 to parallelism n2 can be realized
/// with `scheme`.
bool SchemeFeasible(PartitionScheme scheme, int n1, int n2) {
  switch (scheme) {
    case PartitionScheme::kOneToOne:
      return n1 == n2;
    case PartitionScheme::kSplit:
      return n2 % n1 == 0 && n2 / n1 >= 2;
    case PartitionScheme::kMerge:
      return n1 % n2 == 0 && n1 / n2 >= 2;
    case PartitionScheme::kFull:
      return true;
  }
  return false;
}

/// Any non-Full scheme feasible for (n1, n2), chosen at random.
StatusOr<PartitionScheme> PickStructuredScheme(int n1, int n2, Rng* rng) {
  std::vector<PartitionScheme> feasible;
  for (PartitionScheme s : {PartitionScheme::kOneToOne, PartitionScheme::kSplit,
                            PartitionScheme::kMerge}) {
    if (SchemeFeasible(s, n1, n2)) {
      feasible.push_back(s);
    }
  }
  if (feasible.empty()) {
    return Internal("no structured scheme feasible");
  }
  return feasible[rng->NextUint64(feasible.size())];
}

/// True if some non-Full scheme can connect n1 -> n2.
bool StructuredFeasible(int n1, int n2) {
  return n1 == n2 || (n2 % n1 == 0 && n2 / n1 >= 2) ||
         (n1 % n2 == 0 && n1 / n2 >= 2);
}

}  // namespace

StatusOr<Topology> GenerateRandomTopology(const RandomTopologyOptions& options,
                                          Rng* rng) {
  if (options.min_operators < 1 ||
      options.max_operators < options.min_operators) {
    return InvalidArgument("bad operator count range");
  }
  if (options.min_parallelism < 1 ||
      options.max_parallelism < options.min_parallelism) {
    return InvalidArgument("bad parallelism range");
  }
  const int num_ops = static_cast<int>(
      rng->NextInt(options.min_operators, options.max_operators));

  // Number of source operators: at least 2 when possible so that the DAG
  // contains merge points (multi-input operators), bounded so that the
  // remaining operator budget can collapse all streams into one sink:
  // merging L streams needs L-1 two-input operators, so L <= (N+1)/2.
  const int max_sources = std::max(1, (num_ops + 1) / 2);
  const int num_sources =
      max_sources >= 2
          ? static_cast<int>(rng->NextInt(2, std::min(4, max_sources)))
          : 1;

  TopologyBuilder builder;

  struct OpState {
    OperatorId id;
    int parallelism;
  };
  auto sample_parallelism = [&]() {
    return static_cast<int>(
        rng->NextInt(options.min_parallelism, options.max_parallelism));
  };

  // Active stream heads awaiting a downstream consumer.
  std::vector<OpState> active;
  std::vector<std::pair<OperatorId, int>> all_ops;  // (id, parallelism)
  for (int i = 0; i < num_sources; ++i) {
    int par = sample_parallelism();
    OperatorId id = builder.AddOperator("src" + std::to_string(i), par,
                                        InputCorrelation::kIndependent,
                                        /*selectivity=*/1.0);
    builder.SetSourceRate(id, options.source_rate);
    active.push_back(OpState{id, par});
    all_ops.emplace_back(id, par);
  }

  int remaining = num_ops - num_sources;
  int op_seq = 0;
  while (remaining > 0) {
    const int merges_needed = static_cast<int>(active.size()) - 1;
    bool must_merge = merges_needed >= remaining;
    bool can_merge = active.size() >= 2;
    bool do_merge = can_merge && (must_merge || rng->NextBool(0.5));

    // Pick upstream streams.
    std::vector<OpState> ups;
    if (do_merge) {
      size_t a = rng->NextUint64(active.size());
      size_t b = rng->NextUint64(active.size() - 1);
      if (b >= a) {
        ++b;
      }
      if (a > b) {
        std::swap(a, b);
      }
      ups.push_back(active[a]);
      ups.push_back(active[b]);
      active.erase(active.begin() + static_cast<long>(b));
      active.erase(active.begin() + static_cast<long>(a));
    } else {
      size_t a = rng->NextUint64(active.size());
      ups.push_back(active[a]);
      active.erase(active.begin() + static_cast<long>(a));
    }

    // Choose the new operator's parallelism.
    int par = 0;
    if (options.kind == RandomTopologyOptions::Kind::kFull) {
      par = sample_parallelism();
    } else {
      // Collect parallelisms in range feasible against all upstreams.
      std::vector<int> feasible;
      for (int p = options.min_parallelism; p <= options.max_parallelism;
           ++p) {
        bool ok = true;
        for (const OpState& u : ups) {
          if (!StructuredFeasible(u.parallelism, p)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          feasible.push_back(p);
        }
      }
      if (!feasible.empty()) {
        par = feasible[rng->NextUint64(feasible.size())];
      } else {
        // Fall back to parallelism 1, which every upstream can reach via
        // merge (n1 >= 2) or one-to-one (n1 == 1).
        par = 1;
      }
    }

    InputCorrelation correlation =
        (ups.size() >= 2 && rng->NextBool(options.join_fraction))
            ? InputCorrelation::kCorrelated
            : InputCorrelation::kIndependent;
    OperatorId id =
        builder.AddOperator("op" + std::to_string(op_seq++), par, correlation,
                            options.selectivity);
    for (const OpState& u : ups) {
      PartitionScheme scheme = PartitionScheme::kFull;
      if (options.kind == RandomTopologyOptions::Kind::kStructured) {
        PPA_ASSIGN_OR_RETURN(scheme,
                             PickStructuredScheme(u.parallelism, par, rng));
      }
      builder.Connect(u.id, id, scheme);
    }
    active.push_back(OpState{id, par});
    all_ops.emplace_back(id, par);
    --remaining;
  }

  if (active.size() != 1) {
    return Internal("random topology generation left multiple sinks");
  }

  // Task workload skew.
  if (options.skew == RandomTopologyOptions::WorkloadSkew::kZipf) {
    for (const auto& [id, par] : all_ops) {
      // Weight of rank r follows 1/(r+1)^s; ranks shuffled across tasks so
      // the hot task position is random.
      std::vector<double> weights(static_cast<size_t>(par));
      for (int r = 0; r < par; ++r) {
        weights[static_cast<size_t>(r)] =
            1.0 / std::pow(static_cast<double>(r + 1), options.zipf_s);
      }
      rng->Shuffle(&weights);
      for (int k = 0; k < par; ++k) {
        builder.SetTaskWeight(id, k, weights[static_cast<size_t>(k)]);
      }
    }
  }

  return builder.Build();
}

}  // namespace ppa
