#ifndef PPA_TOPOLOGY_TYPES_H_
#define PPA_TOPOLOGY_TYPES_H_

#include <cstdint>
#include <string_view>

namespace ppa {

/// Identifies an operator within a topology (dense, 0-based).
using OperatorId = int32_t;
/// Identifies a task (a parallel instance of an operator) within a topology
/// (dense, 0-based, global across operators).
using TaskId = int32_t;

inline constexpr OperatorId kInvalidOperatorId = -1;
inline constexpr TaskId kInvalidTaskId = -1;

/// The four stream-partitioning situations between two neighbouring
/// operators (Sec. II-A). With an upstream operator of N1 tasks and a
/// downstream operator of N2 tasks:
///  * kOneToOne: N1 == N2, task i feeds task i.
///  * kSplit:    N2 = M2*N1 (M2 >= 2), each upstream task feeds its own
///               group of M2 downstream tasks.
///  * kMerge:    N1 = M1*N2 (M1 >= 2), each downstream task drains its own
///               group of M1 upstream tasks.
///  * kFull:     every upstream task feeds every downstream task.
enum class PartitionScheme {
  kOneToOne = 0,
  kSplit = 1,
  kMerge = 2,
  kFull = 3,
};

/// Stable name of a partition scheme (e.g. "one-to-one").
std::string_view PartitionSchemeToString(PartitionScheme scheme);

/// Whether an operator combines its input streams (Sec. III-A1).
///  * kIndependent: effective input is the union of the input streams
///    (filters, aggregates, maps).
///  * kCorrelated: the operator joins its input streams; its effective input
///    behaves like their Cartesian product, so losing part of one stream
///    invalidates the matching part of the others.
enum class InputCorrelation {
  kIndependent = 0,
  kCorrelated = 1,
};

/// Stable name of an input-correlation kind ("independent"/"correlated").
std::string_view InputCorrelationToString(InputCorrelation correlation);

}  // namespace ppa

#endif  // PPA_TOPOLOGY_TYPES_H_
