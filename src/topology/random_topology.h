#ifndef PPA_TOPOLOGY_RANDOM_TOPOLOGY_H_
#define PPA_TOPOLOGY_RANDOM_TOPOLOGY_H_

#include "common/random.h"
#include "common/status_or.h"
#include "topology/topology.h"

namespace ppa {

/// Specification grid for the synthetic random topologies of Sec. VI-C
/// (Fig. 14). The generator builds a single-sink DAG: L source operators,
/// stream extensions (unary operators) and stream merges (two-input
/// operators) placed at random until one output stream remains.
struct RandomTopologyOptions {
  /// Structural class of the topology (Fig. 14(c)).
  enum class Kind {
    /// All interior partitionings drawn from {one-to-one, split, merge}.
    kStructured,
    /// Every partitioning is Full.
    kFull,
  };

  /// Distribution of task workloads within an operator (Fig. 14(a)).
  enum class WorkloadSkew {
    kUniform,
    kZipf,
  };

  /// Operator count is drawn uniformly from [min_operators, max_operators].
  int min_operators = 5;
  int max_operators = 10;

  /// Operator parallelism is drawn uniformly from
  /// [min_parallelism, max_parallelism] (Fig. 14(b)); structured schemes may
  /// force a derived operator slightly outside the range to satisfy
  /// divisibility.
  int min_parallelism = 1;
  int max_parallelism = 10;

  Kind kind = Kind::kStructured;

  /// Probability that a multi-input operator is a join (correlated input,
  /// Fig. 14(d)).
  double join_fraction = 0.0;

  WorkloadSkew skew = WorkloadSkew::kUniform;
  /// Zipf exponent used when skew == kZipf (paper uses s = 0.1).
  double zipf_s = 0.1;

  /// Aggregate rate of every source operator (tuples/s).
  double source_rate = 1000.0;

  /// Selectivity assigned to every non-source operator.
  double selectivity = 1.0;
};

/// Generates a random topology per `options` using `rng`. The result always
/// has a single output operator and at least one multi-input operator when
/// the operator budget allows (so the join fraction is meaningful).
StatusOr<Topology> GenerateRandomTopology(const RandomTopologyOptions& options,
                                          Rng* rng);

}  // namespace ppa

#endif  // PPA_TOPOLOGY_RANDOM_TOPOLOGY_H_
