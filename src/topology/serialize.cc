#include "topology/serialize.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace ppa {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

StatusOr<PartitionScheme> SchemeFromString(const std::string& s, int line) {
  if (s == "one-to-one") {
    return PartitionScheme::kOneToOne;
  }
  if (s == "split") {
    return PartitionScheme::kSplit;
  }
  if (s == "merge") {
    return PartitionScheme::kMerge;
  }
  if (s == "full") {
    return PartitionScheme::kFull;
  }
  return InvalidArgument("line " + std::to_string(line) +
                         ": unknown partition scheme '" + s + "'");
}

}  // namespace

std::string ToDot(const Topology& topology, const TaskSet* replicated) {
  std::ostringstream out;
  out << "digraph topology {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const OperatorInfo& oi : topology.operators()) {
    int replicas = 0;
    if (replicated != nullptr) {
      for (TaskId t : oi.tasks) {
        replicas += replicated->Contains(t) ? 1 : 0;
      }
    }
    out << "  " << oi.id << " [label=\"" << oi.name << "\\nx"
        << oi.parallelism;
    if (oi.correlation == InputCorrelation::kCorrelated) {
      out << " (join)";
    }
    if (replicated != nullptr) {
      out << "\\n" << replicas << "/" << oi.parallelism << " replicated";
    }
    out << "\"";
    if (replicas > 0) {
      out << ", style=filled, fillcolor=lightblue";
    }
    out << "];\n";
  }
  for (const StreamEdge& e : topology.edges()) {
    out << "  " << e.from << " -> " << e.to << " [label=\""
        << PartitionSchemeToString(e.scheme) << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

StatusOr<Topology> ParseTopologySpec(std::string_view spec) {
  TopologyBuilder builder;
  std::map<std::string, OperatorId> ops;
  std::map<std::string, double> pending_rates;

  std::istringstream in{std::string(spec)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments and tokenize.
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    std::istringstream line(raw);
    std::string verb;
    if (!(line >> verb)) {
      continue;  // Blank line.
    }
    auto err = [&](const std::string& message) {
      return InvalidArgument("line " + std::to_string(line_no) + ": " +
                             message);
    };
    if (verb == "operator") {
      std::string name;
      int parallelism = 0;
      if (!(line >> name >> parallelism)) {
        return err("expected: operator <name> <parallelism> ...");
      }
      if (ops.count(name) > 0) {
        return err("duplicate operator '" + name + "'");
      }
      InputCorrelation correlation = InputCorrelation::kIndependent;
      double selectivity = 1.0;
      std::string option;
      while (line >> option) {
        if (option == "join") {
          correlation = InputCorrelation::kCorrelated;
        } else if (option.rfind("selectivity=", 0) == 0) {
          selectivity = std::stod(option.substr(12));
        } else if (option.rfind("rate=", 0) == 0) {
          pending_rates[name] = std::stod(option.substr(5));
        } else {
          return err("unknown operator option '" + option + "'");
        }
      }
      ops[name] = builder.AddOperator(name, parallelism, correlation,
                                      selectivity);
    } else if (verb == "edge") {
      std::string from, to, scheme_name;
      if (!(line >> from >> to >> scheme_name)) {
        return err("expected: edge <from> <to> <scheme>");
      }
      auto from_it = ops.find(from);
      auto to_it = ops.find(to);
      if (from_it == ops.end() || to_it == ops.end()) {
        return err("edge references undeclared operator");
      }
      PPA_ASSIGN_OR_RETURN(PartitionScheme scheme,
                           SchemeFromString(scheme_name, line_no));
      builder.Connect(from_it->second, to_it->second, scheme);
    } else if (verb == "weight") {
      std::string name;
      int index = 0;
      double weight = 0;
      if (!(line >> name >> index >> weight)) {
        return err("expected: weight <op> <index> <weight>");
      }
      auto it = ops.find(name);
      if (it == ops.end()) {
        return err("weight references undeclared operator");
      }
      builder.SetTaskWeight(it->second, index, weight);
    } else {
      return err("unknown directive '" + verb + "'");
    }
  }
  for (const auto& [name, rate] : pending_rates) {
    builder.SetSourceRate(ops.at(name), rate);
  }
  return builder.Build();
}

std::string ToSpec(const Topology& topology) {
  std::ostringstream out;
  for (const OperatorInfo& oi : topology.operators()) {
    out << "operator " << oi.name << " " << oi.parallelism;
    if (oi.correlation == InputCorrelation::kCorrelated) {
      out << " join";
    }
    if (oi.selectivity != 1.0) {
      out << " selectivity=" << FormatDouble(oi.selectivity);
    }
    if (oi.upstream.empty()) {
      double total = 0;
      for (TaskId t : oi.tasks) {
        total += topology.task(t).output_rate;
      }
      out << " rate=" << FormatDouble(total);
    }
    out << "\n";
  }
  for (const StreamEdge& e : topology.edges()) {
    out << "edge " << topology.op(e.from).name << " "
        << topology.op(e.to).name << " "
        << PartitionSchemeToString(e.scheme) << "\n";
  }
  for (const OperatorInfo& oi : topology.operators()) {
    for (int k = 0; k < oi.parallelism; ++k) {
      const double w =
          topology.task(oi.tasks[static_cast<size_t>(k)]).weight;
      if (w != 1.0) {
        out << "weight " << oi.name << " " << k << " " << FormatDouble(w)
            << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace ppa
