#ifndef PPA_TOPOLOGY_SERIALIZE_H_
#define PPA_TOPOLOGY_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/status_or.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// Renders a topology as a Graphviz DOT digraph (operator granularity):
/// node labels carry the operator name, parallelism, join marker, and —
/// when `replicated` is given — how many of its tasks the plan actively
/// replicates; edge labels carry the partition scheme.
std::string ToDot(const Topology& topology,
                  const TaskSet* replicated = nullptr);

/// Parses the compact line-oriented topology spec:
///
///   # comment
///   operator <name> <parallelism> [join] [selectivity=<s>] [rate=<r>]
///   edge <from-name> <to-name> <one-to-one|split|merge|full>
///   weight <op-name> <task-index> <weight>
///
/// `rate` is only valid on operators that end up as sources. Operator
/// names must be unique. Returns the built topology or the first error
/// with its line number.
StatusOr<Topology> ParseTopologySpec(std::string_view spec);

/// Emits a spec that ParseTopologySpec() parses back into an equivalent
/// topology (same operators, edges, rates, and weights).
std::string ToSpec(const Topology& topology);

}  // namespace ppa

#endif  // PPA_TOPOLOGY_SERIALIZE_H_
