#ifndef PPA_TOPOLOGY_TOPOLOGY_H_
#define PPA_TOPOLOGY_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "topology/types.h"

namespace ppa {

/// Static description of one operator of a query topology.
struct OperatorInfo {
  OperatorId id = kInvalidOperatorId;
  std::string name;
  /// Degree of parallelization (number of tasks).
  int parallelism = 1;
  /// Join vs. union semantics of multi-stream input (Sec. III-A1).
  InputCorrelation correlation = InputCorrelation::kIndependent;
  /// Fraction of (effective) input rate that appears on the output stream.
  double selectivity = 1.0;
  /// Ids of this operator's tasks, in partition order.
  std::vector<TaskId> tasks;
  /// Upstream neighbouring operators (one entry per input stream).
  std::vector<OperatorId> upstream;
  /// Downstream neighbouring operators.
  std::vector<OperatorId> downstream;
};

/// An operator-level edge: `from`'s output stream is partitioned to `to`.
struct StreamEdge {
  OperatorId from = kInvalidOperatorId;
  OperatorId to = kInvalidOperatorId;
  PartitionScheme scheme = PartitionScheme::kFull;
};

/// A task-level edge (a substream): part of `from`'s output stream that is
/// routed to task `to`. `rate` is the substream rate (tuples/s), derived by
/// Topology from source rates, task weights, and operator selectivities.
struct Substream {
  TaskId from = kInvalidTaskId;
  TaskId to = kInvalidTaskId;
  OperatorId from_op = kInvalidOperatorId;
  OperatorId to_op = kInvalidOperatorId;
  double rate = 0.0;
};

/// Static description of one task.
struct TaskInfo {
  TaskId id = kInvalidTaskId;
  OperatorId op = kInvalidOperatorId;
  /// Index of this task within its operator, in [0, parallelism).
  int index_in_op = 0;
  /// Relative share of its operator's input keys routed to this task;
  /// drives workload skew (Fig. 14(a)). Default 1.0 (uniform).
  double weight = 1.0;
  /// Output stream rate (tuples/s), derived. For source tasks this is the
  /// configured generation rate share.
  double output_rate = 0.0;
  /// Indexes into Topology::substreams() of the task's incoming substreams.
  std::vector<int> in_substreams;
  /// Indexes into Topology::substreams() of the task's outgoing substreams.
  std::vector<int> out_substreams;
};

/// Immutable(-ish) query topology: a DAG of operators expanded into a DAG
/// of tasks connected by substreams, with a derived rate on every substream
/// and every task output stream (Sec. II). Build instances with
/// TopologyBuilder. The only post-build mutation is updating source rates /
/// task weights and recomputing the derived rates, which supports dynamic
/// plan adaptation (Sec. V-C).
class Topology {
 public:
  Topology() = default;

  int num_operators() const { return static_cast<int>(operators_.size()); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  const std::vector<OperatorInfo>& operators() const { return operators_; }
  const std::vector<TaskInfo>& tasks() const { return tasks_; }
  const std::vector<StreamEdge>& edges() const { return edges_; }
  const std::vector<Substream>& substreams() const { return substreams_; }

  const OperatorInfo& op(OperatorId id) const { return operators_[id]; }
  const TaskInfo& task(TaskId id) const { return tasks_[id]; }

  /// Operators with no upstream neighbours (stream sources).
  const std::vector<OperatorId>& source_operators() const { return sources_; }
  /// Operators with no downstream neighbours (output operators).
  const std::vector<OperatorId>& sink_operators() const { return sinks_; }

  /// True iff the task belongs to a source operator.
  [[nodiscard]] bool IsSourceTask(TaskId id) const {
    return op(task(id).op).upstream.empty();
  }
  /// True iff the task belongs to a sink operator.
  [[nodiscard]] bool IsSinkTask(TaskId id) const {
    return op(task(id).op).downstream.empty();
  }

  /// The partition scheme of the operator-level edge from -> to; NotFound
  /// if the operators are not neighbours.
  StatusOr<PartitionScheme> EdgeScheme(OperatorId from, OperatorId to) const;

  /// Operators in a topological order (sources first).
  const std::vector<OperatorId>& topo_order() const { return topo_order_; }

  /// Human-readable task label, e.g. "agg[3]".
  [[nodiscard]] std::string TaskLabel(TaskId id) const;

  /// Sets the aggregate output rate (tuples/s) of a source operator; it is
  /// divided among the operator's tasks proportionally to task weights.
  /// Call RecomputeRates() afterwards.
  Status SetSourceRate(OperatorId op, double total_rate);

  /// Sets the key-share weight of a task (drives workload skew).
  /// Call RecomputeRates() afterwards.
  Status SetTaskWeight(TaskId task, double weight);

  /// Re-derives all substream and task output rates from source rates,
  /// task weights, and operator selectivities, in topological order:
  ///   substream(u -> t).rate = out_rate(u) * weight(t) / sum of weights of
  ///                            u's downstream tasks on that edge;
  ///   out_rate(t) = selectivity(op(t)) * total input rate of t.
  void RecomputeRates();

 private:
  friend class TopologyBuilder;

  std::vector<OperatorInfo> operators_;
  std::vector<TaskInfo> tasks_;
  std::vector<StreamEdge> edges_;
  std::vector<Substream> substreams_;
  std::vector<OperatorId> sources_;
  std::vector<OperatorId> sinks_;
  std::vector<OperatorId> topo_order_;
  /// Configured per-source-operator aggregate rates.
  std::vector<double> source_rates_;
};

/// Incremental construction of a Topology with validation at Build() time.
class TopologyBuilder {
 public:
  TopologyBuilder() = default;

  /// Adds an operator and returns its id. `parallelism` must be >= 1.
  OperatorId AddOperator(std::string name, int parallelism,
                         InputCorrelation correlation =
                             InputCorrelation::kIndependent,
                         double selectivity = 1.0);

  /// Declares that `to` subscribes to `from`'s output stream, partitioned by
  /// `scheme`. Self-subscription is rejected at Build().
  TopologyBuilder& Connect(OperatorId from, OperatorId to,
                           PartitionScheme scheme);

  /// Sets the aggregate output rate of a source operator (default 1000/s).
  TopologyBuilder& SetSourceRate(OperatorId op, double total_rate);

  /// Sets the key-share weight of task `index` of operator `op`.
  TopologyBuilder& SetTaskWeight(OperatorId op, int index, double weight);

  /// Validates the graph (acyclic, scheme/parallelism compatibility, no
  /// self loops, every non-source operator reachable from a source) and
  /// produces the expanded task-level topology with derived rates.
  StatusOr<Topology> Build() const;

 private:
  struct PendingOperator {
    std::string name;
    int parallelism;
    InputCorrelation correlation;
    double selectivity;
  };
  struct PendingWeight {
    OperatorId op;
    int index;
    double weight;
  };

  std::vector<PendingOperator> operators_;
  std::vector<StreamEdge> edges_;
  std::vector<std::pair<OperatorId, double>> source_rates_;
  std::vector<PendingWeight> weights_;
};

}  // namespace ppa

#endif  // PPA_TOPOLOGY_TOPOLOGY_H_
