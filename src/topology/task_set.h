#ifndef PPA_TOPOLOGY_TASK_SET_H_
#define PPA_TOPOLOGY_TASK_SET_H_

#include <vector>

#include "common/logging.h"
#include "topology/types.h"

namespace ppa {

/// A dense set of task ids over a topology with a fixed task count.
/// Used for failure sets and replication plans; cheap to copy, hashable,
/// and comparable (needed for plan deduplication in the DP planner).
class TaskSet {
 public:
  TaskSet() = default;
  /// An empty set over `num_tasks` tasks.
  explicit TaskSet(int num_tasks)
      : bits_(static_cast<size_t>(num_tasks), false), count_(0) {}

  /// The full set over `num_tasks` tasks.
  static TaskSet All(int num_tasks) {
    TaskSet s(num_tasks);
    s.bits_.assign(static_cast<size_t>(num_tasks), true);
    s.count_ = num_tasks;
    return s;
  }

  /// Number of tasks in the underlying universe (the topology task count).
  [[nodiscard]] int universe_size() const {
    return static_cast<int>(bits_.size());
  }
  /// Number of elements in the set.
  [[nodiscard]] int size() const { return count_; }
  /// True iff the set has no elements.
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// True iff `id` is in the set.
  [[nodiscard]] bool Contains(TaskId id) const {
    PPA_CHECK(id >= 0 && static_cast<size_t>(id) < bits_.size());
    return bits_[static_cast<size_t>(id)];
  }

  /// Adds `id`; returns true if it was newly inserted.
  bool Add(TaskId id) {
    PPA_CHECK(id >= 0 && static_cast<size_t>(id) < bits_.size());
    if (bits_[static_cast<size_t>(id)]) {
      return false;
    }
    bits_[static_cast<size_t>(id)] = true;
    ++count_;
    return true;
  }

  /// Removes `id`; returns true if it was present.
  bool Remove(TaskId id) {
    PPA_CHECK(id >= 0 && static_cast<size_t>(id) < bits_.size());
    if (!bits_[static_cast<size_t>(id)]) {
      return false;
    }
    bits_[static_cast<size_t>(id)] = false;
    --count_;
    return true;
  }

  /// Inserts every element of `other` (same universe required).
  void UnionWith(const TaskSet& other) {
    PPA_CHECK(other.bits_.size() == bits_.size());
    for (size_t i = 0; i < bits_.size(); ++i) {
      if (other.bits_[i] && !bits_[i]) {
        bits_[i] = true;
        ++count_;
      }
    }
  }

  /// Number of elements of `other` missing from this set.
  [[nodiscard]] int CountMissing(const TaskSet& other) const {
    PPA_CHECK(other.bits_.size() == bits_.size());
    int missing = 0;
    for (size_t i = 0; i < bits_.size(); ++i) {
      if (other.bits_[i] && !bits_[i]) {
        ++missing;
      }
    }
    return missing;
  }

  /// True if every element of this set is in `other`.
  [[nodiscard]] bool IsSubsetOf(const TaskSet& other) const {
    PPA_CHECK(other.bits_.size() == bits_.size());
    for (size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i] && !other.bits_[i]) {
        return false;
      }
    }
    return true;
  }

  /// The set of tasks NOT in this set.
  [[nodiscard]] TaskSet Complement() const {
    TaskSet s(*this);
    for (size_t i = 0; i < s.bits_.size(); ++i) {
      s.bits_[i] = !s.bits_[i];
    }
    s.count_ = static_cast<int>(s.bits_.size()) - s.count_;
    return s;
  }

  /// Elements in ascending order.
  [[nodiscard]] std::vector<TaskId> ToVector() const {
    std::vector<TaskId> v;
    v.reserve(static_cast<size_t>(count_));
    for (size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i]) {
        v.push_back(static_cast<TaskId>(i));
      }
    }
    return v;
  }

  friend bool operator==(const TaskSet& a, const TaskSet& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator<(const TaskSet& a, const TaskSet& b) {
    return a.bits_ < b.bits_;
  }

 private:
  std::vector<bool> bits_;
  int count_ = 0;
};

}  // namespace ppa

#endif  // PPA_TOPOLOGY_TASK_SET_H_
