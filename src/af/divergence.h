#ifndef PPA_AF_DIVERGENCE_H_
#define PPA_AF_DIVERGENCE_H_

/// Per-task accounting of un-checkpointed state drift (DESIGN.md §17).
/// The StreamingJob feeds every processed batch in here when a
/// non-exact RecoveryMode is active; a persisted checkpoint clears the
/// task back to zero. Between a skipped checkpoint and the next
/// persisted blob, the tracked drift is exactly what a failure would
/// forfeit — the quantity the ErrorBudget gates on and the certificate
/// reports.

#include <cstdint>
#include <vector>

#include "af/error_budget.h"
#include "common/sim_time.h"

namespace ppa {
namespace af {

/// Tracks each task's Divergence and the anchor time of its rate window.
class DivergenceTracker {
 public:
  DivergenceTracker() = default;

  /// (Re)initializes tracking for `num_tasks` tasks with zero drift,
  /// all anchored at `now`.
  void Reset(int num_tasks, TimePoint now);

  /// Folds one processed batch into `task`'s drift.
  void Observe(int64_t task, int64_t records, int64_t bytes, double weight);

  /// Clears `task`'s drift after a persisted blob (or after a recovery
  /// consumed the forfeited drift) and re-anchors its rate window.
  void Clear(int64_t task, TimePoint now);

  [[nodiscard]] const Divergence& OfTask(int64_t task) const;

  /// Seconds since `task` last had a persisted blob (its rate window).
  [[nodiscard]] double ElapsedSeconds(int64_t task, TimePoint now) const;

  [[nodiscard]] int num_tasks() const {
    return static_cast<int>(drift_.size());
  }

 private:
  std::vector<Divergence> drift_;
  std::vector<TimePoint> anchored_at_;
};

}  // namespace af
}  // namespace ppa

#endif  // PPA_AF_DIVERGENCE_H_
