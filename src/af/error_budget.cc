#include "af/error_budget.h"

#include "fidelity/metrics.h"

namespace ppa {
namespace af {

std::string_view RecoveryModeToString(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kPpa:
      return "ppa";
    case RecoveryMode::kApprox:
      return "approx";
    case RecoveryMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

StatusOr<RecoveryMode> RecoveryModeFromString(std::string_view name) {
  if (name == "ppa") {
    return RecoveryMode::kPpa;
  }
  if (name == "approx") {
    return RecoveryMode::kApprox;
  }
  if (name == "hybrid") {
    return RecoveryMode::kHybrid;
  }
  return InvalidArgument("unknown recovery mode '" + std::string(name) +
                         "' (want ppa|approx|hybrid)");
}

Status ErrorBudgetSpec::Validate() const {
  if (task_divergence_records <= 0) {
    return InvalidArgument("task_divergence_records must be positive");
  }
  if (job_divergence_records <= 0) {
    return InvalidArgument("job_divergence_records must be positive");
  }
  if (task_divergence_rate < 0.0) {
    return InvalidArgument("task_divergence_rate must be non-negative");
  }
  if (max_certified_loss < 0.0 || max_certified_loss > 1.0) {
    return InvalidArgument("max_certified_loss must be in [0, 1]");
  }
  return OkStatus();
}

bool ErrorBudget::AllowSkip(const Divergence& task, double elapsed_seconds,
                            const Divergence& job) const {
  if (task.records > spec_.task_divergence_records) {
    return false;
  }
  if (spec_.task_divergence_rate > 0.0 && elapsed_seconds > 0.0 &&
      static_cast<double>(task.records) >
          spec_.task_divergence_rate * elapsed_seconds) {
    return false;
  }
  if (job.records > spec_.job_divergence_records) {
    return false;
  }
  return true;
}

double CertifiedLossBound(const Topology& topology, const TaskSet& diverged) {
  if (diverged.empty()) {
    return 0.0;
  }
  double loss = 1.0 - ComputeOutputFidelity(topology, diverged);
  if (loss < 0.0) {
    return 0.0;
  }
  return loss > 1.0 ? 1.0 : loss;
}

}  // namespace af
}  // namespace ppa
