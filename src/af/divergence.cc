#include "af/divergence.h"

#include "common/logging.h"

namespace ppa {
namespace af {

void DivergenceTracker::Reset(int num_tasks, TimePoint now) {
  drift_.assign(static_cast<size_t>(num_tasks), Divergence{});
  anchored_at_.assign(static_cast<size_t>(num_tasks), now);
}

void DivergenceTracker::Observe(int64_t task, int64_t records, int64_t bytes,
                                double weight) {
  PPA_CHECK(task >= 0 && static_cast<size_t>(task) < drift_.size());
  Divergence& d = drift_[static_cast<size_t>(task)];
  d.records += records;
  d.bytes += bytes;
  d.weighted += static_cast<double>(records) * weight;
}

void DivergenceTracker::Clear(int64_t task, TimePoint now) {
  PPA_CHECK(task >= 0 && static_cast<size_t>(task) < drift_.size());
  drift_[static_cast<size_t>(task)] = Divergence{};
  anchored_at_[static_cast<size_t>(task)] = now;
}

const Divergence& DivergenceTracker::OfTask(int64_t task) const {
  PPA_CHECK(task >= 0 && static_cast<size_t>(task) < drift_.size());
  return drift_[static_cast<size_t>(task)];
}

double DivergenceTracker::ElapsedSeconds(int64_t task, TimePoint now) const {
  PPA_CHECK(task >= 0 &&
            static_cast<size_t>(task) < anchored_at_.size());
  return (now - anchored_at_[static_cast<size_t>(task)]).seconds();
}

}  // namespace af
}  // namespace ppa
