#ifndef PPA_AF_ERROR_BUDGET_H_
#define PPA_AF_ERROR_BUDGET_H_

/// Approximate fault tolerance (AF): bounded-error recovery as a rival
/// mode beside PPA's exact passive/active split (DESIGN.md §17).
///
/// The contract follows AF-Stream (Cheng/Huang/Lee): a checkpoint may be
/// *skipped* — no blob persisted, upstream buffers trimmed as if it had
/// been taken — whenever the state drift a failure could forfeit stays
/// provably within a user error budget. The drift is accumulated by a
/// DivergenceTracker (divergence.h); this header holds the policy side:
/// the budget declaration, the skip gate, and the certified output-loss
/// bound reported when a task actually recovers from a thinned chain.

#include <cstdint>
#include <string_view>

#include "common/sim_time.h"
#include "common/status.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {
namespace af {

/// How a job trades recovery exactness against checkpoint cost.
enum class RecoveryMode : uint8_t {
  /// Exact recovery: every due checkpoint is persisted and replay covers
  /// the full gap. This is the PPA contract and the default; the af
  /// machinery is completely inert.
  kPpa = 0,
  /// Bounded-error recovery: checkpoints are thinned within the error
  /// budget for every task. Requires a checkpoint-bearing ft_mode.
  kApprox = 1,
  /// PPA replicas keep the planner-selected high-weight tasks exact;
  /// every unreplicated (leaf / low-weight) task runs approximate.
  /// Requires ft_mode = kPpa.
  kHybrid = 2,
};

/// Stable wire/flag name: "ppa", "approx", or "hybrid".
[[nodiscard]] std::string_view RecoveryModeToString(RecoveryMode mode);
/// Parses the names RecoveryModeToString emits; InvalidArgument otherwise.
[[nodiscard]] StatusOr<RecoveryMode> RecoveryModeFromString(
    std::string_view name);

/// Conservative un-checkpointed state drift of a task since its last
/// persisted blob, in the three currencies the budget can be declared in.
struct Divergence {
  int64_t records = 0;    // input records folded into unpersisted state
  int64_t bytes = 0;      // upper bound on the unpersisted state bytes
  double weighted = 0.0;  // records scaled by the task's user weight

  void Add(const Divergence& other) {
    records += other.records;
    bytes += other.bytes;
    weighted += other.weighted;
  }
};

/// The user-declared divergence tolerance, in absolute and windowed-rate
/// forms at both task and job granularity. A checkpoint may be skipped
/// only while *all* enabled forms hold; a zero/negative rate disables
/// that form. Validated via Validate() wherever a JobConfig is accepted.
struct ErrorBudgetSpec {
  /// Absolute per-task form: max records a single task may leave
  /// unpersisted before a checkpoint is forced.
  int64_t task_divergence_records = 5000;
  /// Windowed-rate per-task form: max unpersisted records per second
  /// since the task's last persisted blob (0 = disabled).
  double task_divergence_rate = 0.0;
  /// Absolute per-job form: max summed unpersisted records across every
  /// task currently running ahead of its persisted coverage.
  int64_t job_divergence_records = 50000;
  /// Cap on the certified output-loss bound (1 - OF of the set of tasks
  /// running ahead of persisted coverage). Range [0, 1].
  double max_certified_loss = 0.25;

  [[nodiscard]] Status Validate() const;
};

/// The skip gate. Pure policy over drift snapshots — stateless beyond
/// the spec, so it is trivially deterministic across backends.
class ErrorBudget {
 public:
  explicit ErrorBudget(const ErrorBudgetSpec& spec) : spec_(spec) {}

  /// True when skipping a checkpoint is within budget for a task whose
  /// drift is `task`, `elapsed_seconds` after its last persisted blob,
  /// while the job-wide at-risk drift (including this task) is `job`.
  [[nodiscard]] bool AllowSkip(const Divergence& task,
                               double elapsed_seconds,
                               const Divergence& job) const;

  [[nodiscard]] const ErrorBudgetSpec& spec() const { return spec_; }

 private:
  ErrorBudgetSpec spec_;
};

/// The certified per-batch output-loss bound when the tasks in
/// `diverged` resume from thinned chains: the rate-weighted fidelity
/// loss if their forfeited contribution were missing entirely, i.e.
/// 1 - OF(topology, diverged). Conservative — real divergence decays as
/// stale window slices evict — and a pure function of the topology, so
/// the bound certified at skip time still holds at recovery time.
[[nodiscard]] double CertifiedLossBound(const Topology& topology,
                                        const TaskSet& diverged);

/// What an approximate recovery actually forfeited, reported into the
/// recovery timeline and checked by the chaos error-budget invariant.
struct ApproxCertificate {
  TaskId task = -1;
  int64_t restored_batch = 0;  // persisted chain coverage restored
  int64_t resumed_batch = 0;   // thinned frontier fast-forwarded to
  Divergence forfeited;        // drift in [restored_batch, resumed_batch)
  double certified_loss = 0.0;  // CertifiedLossBound over {task}
  TimePoint at;                 // recovery completion time
};

}  // namespace af
}  // namespace ppa

#endif  // PPA_AF_ERROR_BUDGET_H_
