#include "sim/event_loop.h"

#include <utility>

#include "common/logging.h"

namespace ppa {

uint64_t EventLoop::Schedule(TimePoint at, std::function<void()> fn) {
  PPA_CHECK(fn != nullptr);
  if (at < now_) {
    at = now_;
  }
  const uint64_t id = next_id_++;
  queue_.push(Event{at, id, std::move(fn)});
  return id;
}

uint64_t EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  if (delay < Duration::Zero()) {
    delay = Duration::Zero();
  }
  return Schedule(now_ + delay, std::move(fn));
}

bool EventLoop::Cancel(uint64_t event_id) {
  if (event_id == 0 || event_id >= next_id_) {
    return false;
  }
  // Lazily cancelled: the queue entry is skipped when popped.
  return cancelled_.insert(event_id).second;
}

bool EventLoop::RunOne(TimePoint deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > deadline) {
      return false;
    }
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    Event event = top;
    queue_.pop();
    now_ = event.at;
    ++events_processed_;
    event.fn();
    return true;
  }
  return false;
}

void EventLoop::RunUntilIdle() {
  while (RunOne(TimePoint::Max())) {
  }
}

void EventLoop::RunUntil(TimePoint deadline) {
  while (RunOne(deadline)) {
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace ppa
