#include "sim/event_loop.h"

#include <utility>

#include "common/logging.h"

namespace ppa {

uint64_t EventLoop::Schedule(TimePoint at, std::function<void()> fn) {
  PPA_CHECK(fn != nullptr);
  if (at < now_) {
    at = now_;
  }
  const uint64_t id = next_id_++;
  queue_.push(Event{at, id, std::move(fn)});
  live_.insert(id);
  obs::Set(queue_depth_gauge_, static_cast<double>(live_.size()));
  return id;
}

uint64_t EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  if (delay < Duration::Zero()) {
    delay = Duration::Zero();
  }
  return Schedule(now_ + delay, std::move(fn));
}

bool EventLoop::Cancel(uint64_t event_id) {
  // Only live ids are cancellable: an id that already ran, was already
  // cancelled, or never existed returns false and leaves pending()
  // untouched.
  if (live_.erase(event_id) == 0) {
    return false;
  }
  // Lazily cancelled: the queue entry is skipped when popped.
  cancelled_.insert(event_id);
  obs::Add(cancelled_counter_);
  obs::Set(queue_depth_gauge_, static_cast<double>(live_.size()));
  return true;
}

void EventLoop::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    events_counter_ = nullptr;
    cancelled_counter_ = nullptr;
    queue_depth_gauge_ = nullptr;
    queue_occupancy_ = nullptr;
    return;
  }
  events_counter_ = registry->counter("sim.events_processed");
  cancelled_counter_ = registry->counter("sim.events_cancelled");
  queue_depth_gauge_ = registry->gauge("sim.queue_depth");
  queue_occupancy_ = registry->histogram("sim.queue_occupancy");
}

bool EventLoop::RunOne(TimePoint deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > deadline) {
      return false;
    }
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    Event event = top;
    queue_.pop();
    live_.erase(event.id);
    now_ = event.at;
    ++events_processed_;
    obs::Add(events_counter_);
    obs::Set(queue_depth_gauge_, static_cast<double>(live_.size()));
    obs::Observe(queue_occupancy_, static_cast<double>(live_.size()));
    event.fn();
    return true;
  }
  return false;
}

void EventLoop::RunUntilIdle() {
  obs::BeginSpan(spans_, now_, obs::SpanCategory::kSimRun);
  while (RunOne(TimePoint::Max())) {
  }
  obs::EndSpan(spans_, now_);
}

void EventLoop::RunUntil(TimePoint deadline) {
  obs::BeginSpan(spans_, now_, obs::SpanCategory::kSimRun);
  while (RunOne(deadline)) {
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  obs::EndSpan(spans_, now_);
}

}  // namespace ppa
