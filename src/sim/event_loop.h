#ifndef PPA_SIM_EVENT_LOOP_H_
#define PPA_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ppa {

/// Deterministic discrete-event simulator. Events fire in (time, insertion
/// order): two events scheduled for the same instant run in the order they
/// were scheduled, so simulations are exactly reproducible. This replaces
/// the paper's wall-clock EC2 cluster (see DESIGN.md Sec. 3.1).
class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time; advances only while running events.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()); returns an
  /// event id usable with Cancel().
  uint64_t Schedule(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` after `delay` (negative delays clamp to zero).
  uint64_t ScheduleAfter(Duration delay, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already ran or never
  /// existed.
  [[nodiscard]] bool Cancel(uint64_t event_id);

  /// Runs events until the queue is empty.
  void RunUntilIdle();

  /// Runs events with firing time <= deadline, then sets now() to
  /// `deadline` (even if the queue drained earlier).
  void RunUntil(TimePoint deadline);

  /// Number of events executed so far.
  int64_t events_processed() const { return events_processed_; }

  /// Number of events still pending (scheduled, not yet run or
  /// cancelled).
  size_t pending() const { return live_.size(); }

  /// Publishes "sim.events_processed", "sim.queue_depth",
  /// "sim.events_cancelled" (Cancel() calls that hit a live event), and
  /// "sim.queue_occupancy" (a histogram of the pending-event count
  /// sampled at each executed event — the loop's load profile over the
  /// run, where the gauge only keeps min/max/last) to `registry`
  /// (nullptr detaches). Recording never feeds back into scheduling, so
  /// attaching metrics cannot change a simulation.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Registers a span profiler (nullptr detaches): each RunUntil /
  /// RunUntilIdle drive then brackets its execution in a sim-run root
  /// span, so spans recorded by event handlers nest under it. Like
  /// AttachMetrics, recording never feeds back into scheduling.
  void AttachSpans(obs::SpanProfiler* spans) { spans_ = spans; }

 private:
  struct Event {
    TimePoint at;
    uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.id > b.id;
    }
  };

  bool RunOne(TimePoint deadline);

  TimePoint now_ = TimePoint::Zero();
  uint64_t next_id_ = 1;
  int64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// Ids scheduled but not yet run or cancelled. Distinguishes "already
  /// ran" from "pending" so Cancel() cannot double-count.
  std::unordered_set<uint64_t> live_;
  /// Cancelled ids whose queue entries are lazily skipped when popped.
  std::unordered_set<uint64_t> cancelled_;
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* queue_occupancy_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace ppa

#endif  // PPA_SIM_EVENT_LOOP_H_
