#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ppa {

ThreadPool::ThreadPool(int num_threads) {
  const size_t n = static_cast<size_t>(std::max(num_threads, 1));
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  PPA_CHECK(fn != nullptr) << "ThreadPool::Submit requires a task";
  size_t shard;
  {
    MutexLock lock(&mu_);
    PPA_CHECK(!stop_) << "Submit after ThreadPool destruction began";
    shard = next_shard_++ % workers_.size();
    ++queued_;
  }
  {
    Worker& target = *workers_[shard];
    MutexLock lock(&target.mu);
    target.tasks.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  {
    Worker& own = *workers_[self];
    MutexLock lock(&own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (task == nullptr) {
    for (size_t k = 1; k < workers_.size() && task == nullptr; ++k) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      MutexLock lock(&victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (task == nullptr) {
    return false;
  }
  {
    MutexLock lock(&mu_);
    --queued_;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (RunOneTask(self)) {
      continue;
    }
    MutexLock lock(&mu_);
    // The predicate recheck loop makes the cv handoff visible to the
    // thread-safety analysis: Wait requires mu_ held, releases it while
    // blocked, and reacquires it before the predicate is read again.
    while (!stop_ && queued_ == 0) {
      cv_.Wait(&mu_);
    }
    if (queued_ > 0) {
      continue;  // Claim it through RunOneTask (another worker may win).
    }
    return;  // stop_ was set and the queue is drained.
  }
}

int ThreadPool::DefaultParallelism() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

}  // namespace ppa
