#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ppa {

ThreadPool::ThreadPool(int num_threads) {
  const size_t n = static_cast<size_t>(std::max(num_threads, 1));
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  PPA_CHECK(fn != nullptr) << "ThreadPool::Submit requires a task";
  size_t shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PPA_CHECK(!stop_) << "Submit after ThreadPool destruction began";
    shard = next_shard_++ % workers_.size();
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[shard]->mu);
    workers_[shard]->tasks.push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (task == nullptr) {
    for (size_t k = 1; k < workers_.size() && task == nullptr; ++k) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (task == nullptr) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --queued_;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (RunOneTask(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (queued_ > 0) {
      continue;  // Claim it through RunOneTask (another worker may win).
    }
    if (stop_) {
      return;
    }
  }
}

int ThreadPool::DefaultParallelism() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

}  // namespace ppa
