#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ppa {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Mix(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

uint64_t DeriveSeed(uint64_t base, uint64_t index) {
  // Mix the index through one SplitMix64 round before combining so that
  // consecutive indices land in unrelated regions of the seed space, then
  // mix again: (base, index) and (base, index + 1) share no structure.
  uint64_t state = base ^ SplitMix64Mix(index + 0x9e3779b97f4a7c15ULL);
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  PPA_CHECK(bound > 0) << "NextUint64 bound must be positive";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PPA_CHECK(lo <= hi) << "NextInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfGenerator::ZipfGenerator(size_t n, double s) : s_(s) {
  PPA_CHECK(n >= 1) << "ZipfGenerator needs n >= 1";
  PPA_CHECK(s >= 0.0) << "ZipfGenerator needs s >= 0";
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // Guard against rounding.
}

size_t ZipfGenerator::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfGenerator::Pmf(size_t r) const {
  PPA_CHECK(r < cdf_.size());
  double lo = r == 0 ? 0.0 : cdf_[r - 1];
  return cdf_[r] - lo;
}

}  // namespace ppa
