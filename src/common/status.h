#ifndef PPA_COMMON_STATUS_H_
#define PPA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ppa {

/// Error codes used across the library. Modeled after the usual
/// LevelDB/RocksDB-style status taxonomy: fallible public APIs return a
/// Status (or StatusOr<T>) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-type result of a fallible operation: a code plus a free-form
/// message. An OK status carries no allocation. Marked [[nodiscard]]:
/// every call site must consume the result (check it, return it, or
/// PPA_CHECK_OK it) — silently dropping an error is a bug.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` should not
  /// be kOk; use the default constructor (or OkStatus()) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// True iff the status is OK.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }

  /// The error code (kOk for a success status).
  [[nodiscard]] StatusCode code() const { return code_; }

  /// The human-readable error message (empty for a success status).
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Streams status.ToString() into `os`.
std::ostream& operator<<(std::ostream& os, const Status& status);

/// Factory helpers; prefer these over spelling out the enum at call sites.
Status OkStatus();
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status ResourceExhausted(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);

}  // namespace ppa

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define PPA_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ppa::Status ppa_status_macro_tmp_ = (expr);   \
    if (!ppa_status_macro_tmp_.ok()) {              \
      return ppa_status_macro_tmp_;                 \
    }                                               \
  } while (false)

#endif  // PPA_COMMON_STATUS_H_
