#ifndef PPA_COMMON_WALL_CLOCK_H_
#define PPA_COMMON_WALL_CLOCK_H_

namespace ppa {

/// The project's only sanctioned host-clock read. Everything that models
/// or measures *simulated* behavior uses the virtual clock
/// (common/sim_time.h); the one legitimate use of real time is meta-level
/// measurement of the simulator itself (events/sec, sim/wall ratio in
/// bench/). Funneling that through this shim keeps the rest of src/ free
/// of wall-clock reads — machine-enforced by ppa_lint's hard
/// `no-wallclock-in-sim` rule, which allowlists exactly this file.
///
/// Returns seconds on a monotonic clock with an arbitrary epoch: only
/// differences between two reads are meaningful, and two runs of the
/// same experiment will NOT see the same values — never let a result
/// depend on one.
[[nodiscard]] double WallClockSeconds();

}  // namespace ppa

#endif  // PPA_COMMON_WALL_CLOCK_H_
