#ifndef PPA_COMMON_STATUS_OR_H_
#define PPA_COMMON_STATUS_OR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace ppa {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. The usual accessor discipline applies: check ok() (or
/// status()) before calling value(). Marked [[nodiscard]]: silently
/// dropping a StatusOr discards both the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error and is converted to an Internal error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Internal("StatusOr constructed with OK status but no value");
    }
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  /// True iff a value is present.
  [[nodiscard]] bool ok() const { return value_.has_value(); }

  /// The status: OK iff a value is present.
  [[nodiscard]] const Status& status() const { return status_; }

  /// The contained value. Terminates the program if no value is present.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      PPA_LOG(Fatal) << "StatusOr::value() called on error: "
                     << status_.ToString();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace ppa

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status
/// from the enclosing function, otherwise move-assigns the value into `lhs`.
#define PPA_ASSIGN_OR_RETURN(lhs, rexpr)               \
  PPA_ASSIGN_OR_RETURN_IMPL_(                          \
      PPA_STATUS_MACRO_CONCAT_(ppa_statusor_, __LINE__), lhs, rexpr)

#define PPA_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) {                                  \
    return statusor.status();                            \
  }                                                      \
  lhs = std::move(statusor).value()

#define PPA_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define PPA_STATUS_MACRO_CONCAT_(x, y) PPA_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // PPA_COMMON_STATUS_OR_H_
