#include "common/sim_time.h"

#include <cstdio>

namespace ppa {

std::string Duration::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", seconds());
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", seconds());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToString();
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << t.ToString();
}

}  // namespace ppa
