#include "common/logging.h"

#include <atomic>

#include "common/thread_annotations.h"

namespace ppa {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

/// Serializes sink writes so log lines emitted by concurrent threads
/// (pool workers, the future execution backend) never interleave
/// mid-line. Leaked on purpose: logging must stay usable during static
/// destruction, after a function-local static's destructor would run.
Mutex& LogSinkMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    MutexLock lock(&LogSinkMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    // Outside the lock scope so the fatal line is flushed and the sink
    // mutex is released before the process dies.
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace ppa
