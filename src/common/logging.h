#ifndef PPA_COMMON_LOGGING_H_
#define PPA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

#include "common/status.h"

namespace ppa {

/// Log severities, in increasing order of urgency.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the process-wide minimum severity that is actually emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum severity. Messages below `level` are
/// dropped. Default is kInfo.
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log message collector; emits on destruction. kFatal aborts
/// the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace ppa

#define PPA_LOG(level)                                                     \
  ::ppa::internal_logging::LogMessage(::ppa::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

/// Fatal-on-false invariant check, active in all build modes.
#define PPA_CHECK(condition)                                   \
  if (!(condition))                                            \
  ::ppa::internal_logging::LogMessage(::ppa::LogLevel::kFatal, \
                                      __FILE__, __LINE__)      \
          .stream()                                            \
      << "Check failed: " #condition " "

#define PPA_CHECK_OK(expr)                                     \
  if (::ppa::Status ppa_check_ok_tmp_ = (expr);                \
      !ppa_check_ok_tmp_.ok())                                 \
  ::ppa::internal_logging::LogMessage(::ppa::LogLevel::kFatal, \
                                      __FILE__, __LINE__)      \
          .stream()                                            \
      << "Status not OK: " << ppa_check_ok_tmp_.ToString()

#endif  // PPA_COMMON_LOGGING_H_
