#ifndef PPA_COMMON_RANDOM_H_
#define PPA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ppa {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
/// Every randomized component in the library takes an explicit Rng (or a
/// seed) so that simulations, generators, and tests are reproducible.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// One step of the stateless SplitMix64 mixer: maps `x` to a uniformly
/// distributed 64-bit value. Building block for deriving independent seeds
/// (see DeriveSeed); also how Rng expands its own seed.
[[nodiscard]] uint64_t SplitMix64Mix(uint64_t x);

/// Derives the RNG seed of run `index` within a sweep seeded with `base`.
/// Runs of the same sweep get decorrelated streams, and the derivation
/// depends only on (base, index) — never on execution order — so a sweep
/// fanned across threads reproduces the serial run bit for bit
/// (src/exp/parallel_runner.h relies on this).
[[nodiscard]] uint64_t DeriveSeed(uint64_t base, uint64_t index);

/// Samples ranks from a Zipf(s) distribution over {0, ..., n-1}: rank r is
/// drawn with probability proportional to 1 / (r+1)^s. Uses a precomputed
/// cumulative table (O(log n) per sample). s == 0 degenerates to uniform.
class ZipfGenerator {
 public:
  /// `n` must be >= 1; `s` must be >= 0.
  ZipfGenerator(size_t n, double s);

  /// Draws a rank in [0, n).
  [[nodiscard]] size_t Sample(Rng* rng) const;

  /// Population size.
  size_t n() const { return cdf_.size(); }
  /// Skew exponent.
  double s() const { return s_; }

  /// Probability mass of rank r.
  [[nodiscard]] double Pmf(size_t r) const;

 private:
  double s_;
  std::vector<double> cdf_;
};

}  // namespace ppa

#endif  // PPA_COMMON_RANDOM_H_
