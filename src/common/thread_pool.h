#ifndef PPA_COMMON_THREAD_POOL_H_
#define PPA_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace ppa {

/// A small fixed-size work-stealing thread pool. Each worker owns a deque:
/// it pops its own tasks newest-first (LIFO keeps caches warm) and steals
/// oldest-first from siblings when its deque runs dry; external
/// submissions are sharded round-robin across the deques.
///
/// Scheduling order is deliberately unspecified — determinism is the
/// *caller's* contract, kept by keying results to submission indices and
/// deriving per-task RNG streams from those indices (DeriveSeed), never
/// from execution order. exp::ParallelRunner packages that pattern.
///
/// Destruction drains every task that was queued before the destructor
/// ran, then joins the workers; submitting concurrently with destruction
/// is not supported.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe from any thread, including workers (a task may
  /// submit follow-up tasks while the pool is live).
  void Submit(std::function<void()> fn) PPA_EXCLUDES(mu_);

  /// Hardware concurrency, at least 1 — the natural `--jobs 0` expansion.
  static int DefaultParallelism();

 private:
  /// One worker's deque; `mu` guards only the deque so stealing never
  /// contends with the pool-wide bookkeeping lock.
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> tasks PPA_GUARDED_BY(mu);
  };

  /// Pops (own back) or steals (sibling front) one task and runs it.
  bool RunOneTask(size_t self) PPA_EXCLUDES(mu_);
  void WorkerLoop(size_t self) PPA_EXCLUDES(mu_);

  // Sized in the constructor before any worker starts; immutable after.
  std::vector<std::unique_ptr<Worker>> workers_;
  // Joined only by the destructor, after every worker has exited.
  std::vector<std::thread> threads_;

  // Pool-wide bookkeeping: count of queued-but-unclaimed tasks and the
  // stop flag, with the condition variable idle workers sleep on.
  Mutex mu_;
  CondVar cv_;
  int64_t queued_ PPA_GUARDED_BY(mu_) = 0;
  size_t next_shard_ PPA_GUARDED_BY(mu_) = 0;
  bool stop_ PPA_GUARDED_BY(mu_) = false;
};

}  // namespace ppa

#endif  // PPA_COMMON_THREAD_POOL_H_
