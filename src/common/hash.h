#ifndef PPA_COMMON_HASH_H_
#define PPA_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace ppa {

/// 64-bit FNV-1a hash of a byte string; deterministic across platforms, used
/// for key partitioning so that task assignment is stable and reproducible.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Mixes a 64-bit integer (finalizer from MurmurHash3).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace ppa

#endif  // PPA_COMMON_HASH_H_
