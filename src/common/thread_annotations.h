#ifndef PPA_COMMON_THREAD_ANNOTATIONS_H_
#define PPA_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang thread-safety-analysis (TSA) annotations plus the capability-
// annotated ppa::Mutex / ppa::MutexLock / ppa::CondVar wrappers every
// module outside src/common/ must use instead of the raw <mutex> types
// (enforced by ppa_lint's `no-raw-mutex` rule, see DESIGN.md §14).
//
// Under Clang the macros expand to the TSA attributes and
// `-Wthread-safety -Werror=thread-safety` turns lock-discipline mistakes
// into compile errors; under other compilers they expand to nothing, so
// annotated code stays portable.
//
// How to annotate a class (the full pattern is DESIGN.md §14):
//
//   class Account {
//    public:
//     void Deposit(int64_t cents) PPA_EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       balance_ += cents;
//     }
//    private:
//     Mutex mu_;
//     int64_t balance_ PPA_GUARDED_BY(mu_) = 0;
//   };

#if defined(__clang__) && (!defined(SWIG))
#define PPA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define PPA_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on non-Clang
#endif

/// Declares a type as a capability (a lockable resource TSA tracks).
#define PPA_CAPABILITY(x) PPA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define PPA_SCOPED_CAPABILITY \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The annotated data member may only be read or written while holding
/// the named mutex.
#define PPA_GUARDED_BY(x) PPA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by the
/// named mutex.
#define PPA_PT_GUARDED_BY(x) \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The annotated function must be called with the listed capabilities
/// held (and they stay held across the call).
#define PPA_REQUIRES(...) \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// The annotated function must be called with the listed capabilities
/// NOT held (it acquires and releases them internally).
#define PPA_EXCLUDES(...) \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// The annotated function acquires the listed capabilities and does not
/// release them before returning.
#define PPA_ACQUIRE(...) \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities, which must
/// be held on entry.
#define PPA_RELEASE(...) \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns the
/// given value (e.g. a TryLock returning true).
#define PPA_TRY_ACQUIRE(...) \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The annotated function returns a reference to the named capability.
#define PPA_RETURN_CAPABILITY(x) \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: suppresses thread-safety analysis inside one function.
/// Every use must carry a comment explaining why the analysis is wrong.
#define PPA_NO_THREAD_SAFETY_ANALYSIS \
  PPA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace ppa {

class CondVar;

/// A capability-annotated wrapper over std::mutex. The only mutex type
/// allowed outside src/common/ (ppa_lint rule `no-raw-mutex`): holding
/// discipline is then machine-checked by Clang's -Wthread-safety pass
/// instead of reviewed by hand.
class PPA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Acquires the mutex, blocking until it is free. Prefer MutexLock.
  void Lock() PPA_ACQUIRE() { mu_.lock(); }

  /// Releases the mutex, which must be held by the calling thread.
  void Unlock() PPA_RELEASE() { mu_.unlock(); }

  /// Acquires the mutex iff it was free; returns whether it was acquired.
  [[nodiscard]] bool TryLock() PPA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  // CondVar::Wait releases/reacquires mu_.
  std::mutex mu_;
};

/// RAII lock of a ppa::Mutex, annotated as a scoped capability so TSA
/// knows the mutex is held for exactly the enclosing scope.
class PPA_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `*mu` for the lifetime of this object.
  explicit MutexLock(Mutex* mu) PPA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  ~MutexLock() PPA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with ppa::Mutex. Wait() must be called with
/// the mutex held (enforced by TSA through PPA_REQUIRES); the lock is
/// released while blocked and reacquired before returning, so guarded
/// state is never touched unlocked — the annotation-visible lock handoff
/// the raw std::condition_variable API obscures.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified, and reacquires
  /// `*mu` before returning. Spurious wakeups are possible: always wait
  /// in a loop that rechecks the predicate.
  void Wait(Mutex* mu) PPA_REQUIRES(mu) {
    // The caller already holds mu (typically through a MutexLock); adopt
    // it for the wait, then release ownership back to the caller's RAII
    // scope so the capability accounting stays balanced.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait() with a wall-duration cap: returns true when notified before
  /// `seconds` elapsed, false on timeout (the mutex is reacquired either
  /// way). Spurious wakeups are possible, so treat `true` as "recheck the
  /// predicate", never as the predicate itself. The cap is a host-side
  /// pacing bound (backend timer threads); simulation code never branches
  /// on it.
  [[nodiscard]] bool WaitFor(Mutex* mu, double seconds) PPA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Wakes one waiter (if any).
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes every waiter.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ppa

#endif  // PPA_COMMON_THREAD_ANNOTATIONS_H_
