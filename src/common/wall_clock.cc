#include "common/wall_clock.h"

#include <chrono>

namespace ppa {

// ppa-lint: allow-file(wall-clock): this shim IS the allowlisted read.

double WallClockSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ppa
