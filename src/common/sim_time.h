#ifndef PPA_COMMON_SIM_TIME_H_
#define PPA_COMMON_SIM_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace ppa {

/// A span of simulated time with microsecond resolution. All engine and
/// runtime components operate on virtual time driven by the event loop, so
/// experiments are deterministic and independent of wall-clock speed.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr Duration operator+(Duration other) const {
    return Duration(micros_ + other.micros_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(micros_ - other.micros_);
  }
  constexpr Duration operator*(int64_t k) const { return Duration(micros_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(micros_ / k); }
  Duration& operator+=(Duration other) {
    micros_ += other.micros_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    micros_ -= other.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t micros) : micros_(micros) {}
  int64_t micros_ = 0;
};

/// An absolute instant of simulated time (microseconds since simulation
/// start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }
  static constexpr TimePoint Zero() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(micros_ + d.micros());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(micros_ - d.micros());
  }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::Micros(micros_ - other.micros_);
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t micros) : micros_(micros) {}
  int64_t micros_ = 0;
};

/// Streams a duration as fractional seconds (e.g. "1.25s").
std::ostream& operator<<(std::ostream& os, Duration d);
/// Streams a time point as fractional seconds since simulation start.
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace ppa

#endif  // PPA_COMMON_SIM_TIME_H_
