#ifndef PPA_ENGINE_TUPLE_H_
#define PPA_ENGINE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "topology/types.h"

namespace ppa {

/// A data item (Sec. II-A): a string key plus an opaque 64-bit value
/// payload. The engine adds provenance fields used for batching, routing,
/// replay, and duplicate elimination.
struct Tuple {
  std::string key;
  int64_t value = 0;

  /// Index of the batch this tuple belongs to.
  int64_t batch = 0;
  /// Per-producer monotonically increasing sequence number; consumers use
  /// it to skip duplicates replayed after a recovery or replica takeover
  /// (Sec. V-B).
  uint64_t seq = 0;
  /// Task that produced the tuple (kInvalidTaskId for raw source input).
  TaskId producer = kInvalidTaskId;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.key == b.key && a.value == b.value && a.batch == b.batch &&
           a.seq == b.seq && a.producer == b.producer;
  }
};

/// The output of one task for one batch, retained in the task's output
/// buffer until trimmed by the checkpoint protocol. Carries the batch's
/// latency lineage: the sim-time the batch's data entered the topology
/// at a source and the number of task hops it crossed to get here, so a
/// sink can attribute end-to-end latency without re-walking the DAG.
struct BatchOutput {
  int64_t batch = 0;
  std::vector<Tuple> tuples;
  /// Source-ingest sim-time of this batch's lineage: the nominal tick
  /// time at the sources for stable in-tick processing, which replayed
  /// or recovered batches keep, so late deliveries show their true age.
  TimePoint ingest_at = TimePoint::Zero();
  /// Task hops from the source (sources emit with hops == 1).
  int32_t hops = 0;
};

}  // namespace ppa

#endif  // PPA_ENGINE_TUPLE_H_
