#ifndef PPA_ENGINE_OPERATORS_H_
#define PPA_ENGINE_OPERATORS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"

namespace ppa {

/// Stateless forwarder; useful as a routing/repartitioning stage.
class PassThroughOperator : public OperatorFunction {
 public:
  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override {}
  int64_t StateSizeTuples() const override { return 0; }
};

/// Stateless filter that forwards a deterministic `selectivity` fraction of
/// its input, decided by a hash of (key, value) so replicas and recovered
/// instances agree tuple-by-tuple.
class SelectivityOperator : public OperatorFunction {
 public:
  explicit SelectivityOperator(double selectivity);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override {}
  int64_t StateSizeTuples() const override { return 0; }

 private:
  double selectivity_;
};

/// The synthetic sliding-window operator of the recovery-efficiency
/// experiments (Sec. VI-A): keeps every input tuple of the last
/// `window_batches` batches as its state, slides by one batch per batch,
/// and emits an aggregate for a `selectivity` fraction of its input. Its
/// state size therefore equals input-rate x window-interval, exactly the
/// paper's setup.
class SlidingWindowAggregateOperator : public OperatorFunction {
 public:
  SlidingWindowAggregateOperator(int64_t window_batches, double selectivity);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  bool SupportsDeltaSnapshots() const override { return true; }
  StatusOr<std::string> SnapshotDelta(int64_t* delta_tuples) override;
  Status ApplyDelta(const std::string& delta) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

  int64_t window_batches() const { return window_batches_; }

 private:
  struct WindowSlice {
    int64_t batch = 0;
    std::vector<Tuple> tuples;
  };

  void Evict(int64_t current_batch);

  int64_t window_batches_;
  double selectivity_;
  std::deque<WindowSlice> window_;
  /// Running sum of values in the window, maintained incrementally.
  int64_t window_sum_ = 0;
  /// Highest slice batch included in the last full or delta snapshot
  /// (-1: none) — the delta baseline.
  int64_t snapshot_marker_ = -1;
};

/// Per-key counter over a sliding window of batches; emits (key, count)
/// for every key touched in the batch. Building block of the Q1 top-k
/// pipeline.
class WindowedKeyCountOperator : public OperatorFunction {
 public:
  explicit WindowedKeyCountOperator(int64_t window_batches);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

 private:
  void Evict(int64_t current_batch);

  int64_t window_batches_;
  /// batch -> per-key counts added in that batch (needed for eviction).
  std::deque<std::pair<int64_t, std::map<std::string, int64_t>>> slices_;
  std::map<std::string, int64_t> counts_;
};

/// Symmetric windowed equi-join on the tuple key (the generic
/// correlated-input operator of Sec. II-A / III-A1): each input tuple is
/// classified as left or right by a caller-supplied predicate, probes the
/// opposite side's window for key matches, emits one tuple per match
/// (key, combine(left value, right value)), and is then inserted into its
/// own side's window. Tuples older than `window_batches` are evicted.
/// The classifier/combiner are construction-time configuration (like any
/// UDF code), so snapshots only carry the window contents.
class SymmetricWindowJoinOperator : public OperatorFunction {
 public:
  /// Returns true if the tuple belongs to the left stream.
  using Classifier = std::function<bool(const Tuple&)>;
  /// Combines a matched pair into the output value (default: sum).
  using Combiner = std::function<int64_t(int64_t, int64_t)>;

  SymmetricWindowJoinOperator(int64_t window_batches, Classifier is_left,
                              Combiner combine = nullptr);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

 private:
  struct Entry {
    int64_t batch = 0;
    int64_t value = 0;
  };
  using Side = std::map<std::string, std::vector<Entry>>;

  void Evict(int64_t current_batch);
  static std::string SnapshotSide(const Side& side);
  static Status RestoreSide(const std::string& blob, Side* side);

  int64_t window_batches_;
  Classifier is_left_;
  Combiner combine_;
  Side left_;
  Side right_;
};

}  // namespace ppa

#endif  // PPA_ENGINE_OPERATORS_H_
