#ifndef PPA_ENGINE_ROUTER_H_
#define PPA_ENGINE_ROUTER_H_

#include <vector>

#include "engine/tuple.h"
#include "topology/topology.h"

namespace ppa {

/// Key-based routing of a task's output stream into substreams (Sec. II-A):
/// for each (producer task, downstream operator) pair, the topology fixes
/// the set of consumer tasks, and a tuple goes to the consumer selected by
/// a deterministic hash of its key. Under one-to-one and merge partitioning
/// the consumer set is a singleton, under split it is the producer's group,
/// and under full it is the whole downstream operator.
class Router {
 public:
  explicit Router(const Topology* topology);

  /// Consumer tasks of `producer` on the edge toward `to_op`, in ascending
  /// task-id order. Empty if there is no such edge.
  const std::vector<TaskId>& Consumers(TaskId producer, OperatorId to_op) const;

  /// The consumer of `tuple` emitted by `producer` toward `to_op`;
  /// kInvalidTaskId if there is no edge.
  TaskId Route(TaskId producer, OperatorId to_op, const Tuple& tuple) const;

  /// Routes one buffered batch of `producer` toward `consumer` (a task
  /// of `to_op`): appends the tuples that hash to `consumer` to `out`
  /// (when non-null) and returns how many routed there. The gather side
  /// of a hop — schedulers pass the upstream BatchOutput along with its
  /// lineage so per-hop threading stays in the routing layer.
  size_t RouteBatchTo(TaskId producer, OperatorId to_op,
                      const BatchOutput& batch, TaskId consumer,
                      std::vector<Tuple>* out) const;

 private:
  const Topology* topology_;
  /// consumers_[producer * num_operators + to_op].
  std::vector<std::vector<TaskId>> consumers_;
  static const std::vector<TaskId> kEmpty;
};

}  // namespace ppa

#endif  // PPA_ENGINE_ROUTER_H_
