#include "engine/operators.h"

#include <algorithm>

#include "common/hash.h"
#include "engine/serde.h"

namespace ppa {
namespace {

void PutTuple(BinaryWriter* w, const Tuple& t) {
  w->PutString(t.key);
  w->PutI64(t.value);
  w->PutI64(t.batch);
  w->PutU64(t.seq);
  w->PutI64(t.producer);
}

StatusOr<Tuple> GetTuple(BinaryReader* r) {
  Tuple t;
  PPA_ASSIGN_OR_RETURN(t.key, r->GetString());
  PPA_ASSIGN_OR_RETURN(t.value, r->GetI64());
  PPA_ASSIGN_OR_RETURN(t.batch, r->GetI64());
  PPA_ASSIGN_OR_RETURN(uint64_t seq, r->GetU64());
  t.seq = seq;
  PPA_ASSIGN_OR_RETURN(int64_t producer, r->GetI64());
  t.producer = static_cast<TaskId>(producer);
  return t;
}

}  // namespace

void PassThroughOperator::ProcessBatch(BatchContext* ctx,
                                       const std::vector<Tuple>& inputs) {
  for (const Tuple& t : inputs) {
    ctx->Emit(t.key, t.value);
  }
}

StatusOr<std::string> PassThroughOperator::SnapshotState() {
  return std::string();
}

Status PassThroughOperator::RestoreState(const std::string& snapshot) {
  if (!snapshot.empty()) {
    return InvalidArgument("PassThroughOperator has no state");
  }
  return OkStatus();
}

SelectivityOperator::SelectivityOperator(double selectivity)
    : selectivity_(selectivity) {}

void SelectivityOperator::ProcessBatch(BatchContext* ctx,
                                       const std::vector<Tuple>& inputs) {
  for (const Tuple& t : inputs) {
    const uint64_t h = Mix64(Fnv1a64(t.key) ^ static_cast<uint64_t>(t.value));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < selectivity_) {
      ctx->Emit(t.key, t.value);
    }
  }
}

StatusOr<std::string> SelectivityOperator::SnapshotState() {
  return std::string();
}

Status SelectivityOperator::RestoreState(const std::string& snapshot) {
  if (!snapshot.empty()) {
    return InvalidArgument("SelectivityOperator has no state");
  }
  return OkStatus();
}

SlidingWindowAggregateOperator::SlidingWindowAggregateOperator(
    int64_t window_batches, double selectivity)
    : window_batches_(window_batches), selectivity_(selectivity) {}

void SlidingWindowAggregateOperator::Evict(int64_t current_batch) {
  while (!window_.empty() &&
         window_.front().batch <= current_batch - window_batches_) {
    for (const Tuple& t : window_.front().tuples) {
      window_sum_ -= t.value;
    }
    window_.pop_front();
  }
}

void SlidingWindowAggregateOperator::ProcessBatch(
    BatchContext* ctx, const std::vector<Tuple>& inputs) {
  Evict(ctx->batch_index());
  WindowSlice slice;
  slice.batch = ctx->batch_index();
  slice.tuples = inputs;
  for (const Tuple& t : inputs) {
    window_sum_ += t.value;
  }
  window_.push_back(std::move(slice));
  // Emit a window aggregate for a `selectivity` fraction of the batch's
  // tuples: every tuple whose position survives the deterministic stride.
  const size_t n = inputs.size();
  const size_t out = static_cast<size_t>(static_cast<double>(n) *
                                         selectivity_);
  for (size_t i = 0; i < out; ++i) {
    const Tuple& t = inputs[i * n / (out == 0 ? 1 : out) % n];
    ctx->Emit(t.key, window_sum_);
  }
}

StatusOr<std::string> SlidingWindowAggregateOperator::SnapshotState() {
  BinaryWriter w;
  w.PutI64(window_sum_);
  w.PutU64(window_.size());
  for (const WindowSlice& slice : window_) {
    w.PutI64(slice.batch);
    w.PutU64(slice.tuples.size());
    for (const Tuple& t : slice.tuples) {
      PutTuple(&w, t);
    }
  }
  snapshot_marker_ = window_.empty() ? -1 : window_.back().batch;
  return std::move(w).data();
}

StatusOr<std::string> SlidingWindowAggregateOperator::SnapshotDelta(
    int64_t* delta_tuples) {
  BinaryWriter w;
  const int64_t horizon = window_.empty() ? snapshot_marker_
                                          : window_.back().batch;
  w.PutI64(horizon);
  int64_t fresh_slices = 0;
  int64_t fresh_tuples = 0;
  for (const WindowSlice& slice : window_) {
    if (slice.batch > snapshot_marker_) {
      ++fresh_slices;
      fresh_tuples += static_cast<int64_t>(slice.tuples.size());
    }
  }
  w.PutU64(static_cast<uint64_t>(fresh_slices));
  for (const WindowSlice& slice : window_) {
    if (slice.batch <= snapshot_marker_) {
      continue;
    }
    w.PutI64(slice.batch);
    w.PutU64(slice.tuples.size());
    for (const Tuple& t : slice.tuples) {
      PutTuple(&w, t);
    }
  }
  snapshot_marker_ = horizon;
  if (delta_tuples != nullptr) {
    *delta_tuples = fresh_tuples;
  }
  return std::move(w).data();
}

Status SlidingWindowAggregateOperator::ApplyDelta(const std::string& delta) {
  BinaryReader r(delta);
  PPA_ASSIGN_OR_RETURN(int64_t horizon, r.GetI64());
  PPA_ASSIGN_OR_RETURN(uint64_t slices, r.GetU64());
  for (uint64_t i = 0; i < slices; ++i) {
    WindowSlice slice;
    PPA_ASSIGN_OR_RETURN(slice.batch, r.GetI64());
    PPA_ASSIGN_OR_RETURN(uint64_t tuples, r.GetU64());
    if (!window_.empty() && slice.batch <= window_.back().batch) {
      return InvalidArgument("delta slices out of order (slice " +
                             std::to_string(slice.batch) + " <= window back " +
                             std::to_string(window_.back().batch) +
                             ", horizon " + std::to_string(horizon) + ")");
    }
    slice.tuples.reserve(tuples);
    for (uint64_t j = 0; j < tuples; ++j) {
      PPA_ASSIGN_OR_RETURN(Tuple t, GetTuple(&r));
      window_sum_ += t.value;
      slice.tuples.push_back(std::move(t));
    }
    window_.push_back(std::move(slice));
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in window delta");
  }
  Evict(horizon);
  snapshot_marker_ = horizon;
  return OkStatus();
}

Status SlidingWindowAggregateOperator::RestoreState(
    const std::string& snapshot) {
  BinaryReader r(snapshot);
  window_.clear();
  PPA_ASSIGN_OR_RETURN(window_sum_, r.GetI64());
  PPA_ASSIGN_OR_RETURN(uint64_t slices, r.GetU64());
  for (uint64_t i = 0; i < slices; ++i) {
    WindowSlice slice;
    PPA_ASSIGN_OR_RETURN(slice.batch, r.GetI64());
    PPA_ASSIGN_OR_RETURN(uint64_t tuples, r.GetU64());
    slice.tuples.reserve(tuples);
    for (uint64_t j = 0; j < tuples; ++j) {
      PPA_ASSIGN_OR_RETURN(Tuple t, GetTuple(&r));
      slice.tuples.push_back(std::move(t));
    }
    window_.push_back(std::move(slice));
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in window snapshot");
  }
  snapshot_marker_ = window_.empty() ? -1 : window_.back().batch;
  return OkStatus();
}

void SlidingWindowAggregateOperator::Reset() {
  window_.clear();
  window_sum_ = 0;
  snapshot_marker_ = -1;
}

int64_t SlidingWindowAggregateOperator::StateSizeTuples() const {
  int64_t total = 0;
  for (const WindowSlice& slice : window_) {
    total += static_cast<int64_t>(slice.tuples.size());
  }
  return total;
}

WindowedKeyCountOperator::WindowedKeyCountOperator(int64_t window_batches)
    : window_batches_(window_batches) {}

void WindowedKeyCountOperator::Evict(int64_t current_batch) {
  while (!slices_.empty() &&
         slices_.front().first <= current_batch - window_batches_) {
    for (const auto& [key, count] : slices_.front().second) {
      auto it = counts_.find(key);
      it->second -= count;
      if (it->second <= 0) {
        counts_.erase(it);
      }
    }
    slices_.pop_front();
  }
}

void WindowedKeyCountOperator::ProcessBatch(BatchContext* ctx,
                                            const std::vector<Tuple>& inputs) {
  Evict(ctx->batch_index());
  std::map<std::string, int64_t> added;
  for (const Tuple& t : inputs) {
    added[t.key] += 1;
    counts_[t.key] += 1;
  }
  for (const auto& [key, delta] : added) {
    (void)delta;
    ctx->Emit(key, counts_[key]);
  }
  slices_.emplace_back(ctx->batch_index(), std::move(added));
}

StatusOr<std::string> WindowedKeyCountOperator::SnapshotState() {
  BinaryWriter w;
  w.PutU64(slices_.size());
  for (const auto& [batch, added] : slices_) {
    w.PutI64(batch);
    w.PutU64(added.size());
    for (const auto& [key, count] : added) {
      w.PutString(key);
      w.PutI64(count);
    }
  }
  return std::move(w).data();
}

Status WindowedKeyCountOperator::RestoreState(const std::string& snapshot) {
  BinaryReader r(snapshot);
  slices_.clear();
  counts_.clear();
  PPA_ASSIGN_OR_RETURN(uint64_t slices, r.GetU64());
  for (uint64_t i = 0; i < slices; ++i) {
    int64_t batch;
    PPA_ASSIGN_OR_RETURN(batch, r.GetI64());
    PPA_ASSIGN_OR_RETURN(uint64_t entries, r.GetU64());
    std::map<std::string, int64_t> added;
    for (uint64_t j = 0; j < entries; ++j) {
      PPA_ASSIGN_OR_RETURN(std::string key, r.GetString());
      PPA_ASSIGN_OR_RETURN(int64_t count, r.GetI64());
      counts_[key] += count;
      added.emplace(std::move(key), count);
    }
    slices_.emplace_back(batch, std::move(added));
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in key-count snapshot");
  }
  return OkStatus();
}

void WindowedKeyCountOperator::Reset() {
  slices_.clear();
  counts_.clear();
}

int64_t WindowedKeyCountOperator::StateSizeTuples() const {
  int64_t total = 0;
  for (const auto& [batch, added] : slices_) {
    (void)batch;
    total += static_cast<int64_t>(added.size());
  }
  return total;
}

SymmetricWindowJoinOperator::SymmetricWindowJoinOperator(
    int64_t window_batches, Classifier is_left, Combiner combine)
    : window_batches_(window_batches),
      is_left_(std::move(is_left)),
      combine_(combine != nullptr
                   ? std::move(combine)
                   : [](int64_t a, int64_t b) { return a + b; }) {}

void SymmetricWindowJoinOperator::Evict(int64_t current_batch) {
  for (Side* side : {&left_, &right_}) {
    for (auto it = side->begin(); it != side->end();) {
      auto& entries = it->second;
      entries.erase(
          std::remove_if(entries.begin(), entries.end(),
                         [&](const Entry& e) {
                           return e.batch <= current_batch - window_batches_;
                         }),
          entries.end());
      if (entries.empty()) {
        it = side->erase(it);
      } else {
        ++it;
      }
    }
  }
}

void SymmetricWindowJoinOperator::ProcessBatch(
    BatchContext* ctx, const std::vector<Tuple>& inputs) {
  const int64_t b = ctx->batch_index();
  Evict(b);
  for (const Tuple& t : inputs) {
    const bool left = is_left_(t);
    Side& own = left ? left_ : right_;
    Side& other = left ? right_ : left_;
    auto match = other.find(t.key);
    if (match != other.end()) {
      for (const Entry& e : match->second) {
        const int64_t value = left ? combine_(t.value, e.value)
                                   : combine_(e.value, t.value);
        ctx->Emit(t.key, value);
      }
    }
    own[t.key].push_back(Entry{b, t.value});
  }
}

std::string SymmetricWindowJoinOperator::SnapshotSide(const Side& side) {
  BinaryWriter w;
  w.PutU64(side.size());
  for (const auto& [key, entries] : side) {
    w.PutString(key);
    w.PutU64(entries.size());
    for (const Entry& e : entries) {
      w.PutI64(e.batch);
      w.PutI64(e.value);
    }
  }
  return std::move(w).data();
}

Status SymmetricWindowJoinOperator::RestoreSide(const std::string& blob,
                                                Side* side) {
  BinaryReader r(blob);
  side->clear();
  PPA_ASSIGN_OR_RETURN(uint64_t keys, r.GetU64());
  for (uint64_t i = 0; i < keys; ++i) {
    PPA_ASSIGN_OR_RETURN(std::string key, r.GetString());
    PPA_ASSIGN_OR_RETURN(uint64_t entries, r.GetU64());
    std::vector<Entry> list;
    list.reserve(entries);
    for (uint64_t j = 0; j < entries; ++j) {
      Entry e;
      PPA_ASSIGN_OR_RETURN(e.batch, r.GetI64());
      PPA_ASSIGN_OR_RETURN(e.value, r.GetI64());
      list.push_back(e);
    }
    (*side)[std::move(key)] = std::move(list);
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in join side snapshot");
  }
  return OkStatus();
}

StatusOr<std::string> SymmetricWindowJoinOperator::SnapshotState() {
  BinaryWriter w;
  w.PutString(SnapshotSide(left_));
  w.PutString(SnapshotSide(right_));
  return std::move(w).data();
}

Status SymmetricWindowJoinOperator::RestoreState(const std::string& snapshot) {
  BinaryReader r(snapshot);
  PPA_ASSIGN_OR_RETURN(std::string left, r.GetString());
  PPA_ASSIGN_OR_RETURN(std::string right, r.GetString());
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in join snapshot");
  }
  PPA_RETURN_IF_ERROR(RestoreSide(left, &left_));
  return RestoreSide(right, &right_);
}

void SymmetricWindowJoinOperator::Reset() {
  left_.clear();
  right_.clear();
}

int64_t SymmetricWindowJoinOperator::StateSizeTuples() const {
  int64_t total = 0;
  for (const Side* side : {&left_, &right_}) {
    for (const auto& [key, entries] : *side) {
      total += static_cast<int64_t>(entries.size());
    }
  }
  return total;
}

}  // namespace ppa
