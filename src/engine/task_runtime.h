#ifndef PPA_ENGINE_TASK_RUNTIME_H_
#define PPA_ENGINE_TASK_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "engine/operator.h"
#include "engine/tuple.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "topology/topology.h"

namespace ppa {

/// Scheduler-provided context for one RunBatch call: the sim-time of the
/// run (span placement), the batch's source-ingest lineage gathered from
/// the upstream outputs, and whether the run replays backlog after a
/// recovery (span categorization). The default context keeps direct
/// engine users (tests, shadow re-execution) working without lineage.
struct BatchRunContext {
  /// Sim-time the scheduler executes the batch at.
  TimePoint now = TimePoint::Zero();
  /// Earliest source-ingest time over the contributing upstream batches
  /// (the tick time itself for sources).
  TimePoint ingest_at = TimePoint::Zero();
  /// Task hops from the source (max over upstream batches, plus one).
  int32_t hops = 1;
  /// True when re-processing buffered backlog after a recovery.
  bool replay = false;
};

/// Runtime instance of one task (a primary copy or an active replica):
/// operator state, duplicate-elimination bookkeeping, the replayable
/// output buffer, and processing counters. Gathering/routing of tuples
/// between tasks is the job scheduler's responsibility; a TaskRuntime only
/// consumes pre-gathered batches and appends to its own output buffer.
class TaskRuntime {
 public:
  /// Exactly one of `op` / `source` must be set (source tasks have no
  /// operator function).
  TaskRuntime(const Topology* topology, TaskId id,
              std::unique_ptr<OperatorFunction> op,
              std::unique_ptr<SourceFunction> source);

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  TaskId id() const { return id_; }
  bool is_source() const { return source_ != nullptr; }
  const OperatorFunction* op() const { return op_.get(); }

  bool alive() const { return alive_; }
  void MarkFailed() {
    alive_ = false;
    ever_failed_ = true;
  }
  void MarkAlive() { alive_ = true; }
  /// True if the task failed at least once in its lifetime.
  bool ever_failed() const { return ever_failed_; }

  /// The next batch index this task will process.
  int64_t next_batch() const { return next_batch_; }

  /// Runs batch `batch` (must equal next_batch()). For sources, `inputs`
  /// is ignored and tuples come from the source function. Inputs already
  /// seen (per-producer sequence number) are dropped — the duplicate
  /// elimination of Sec. V-B. Appends the outputs to the output buffer,
  /// advances next_batch(), and returns the produced batch.
  /// When `emit_downstream` is false the outputs are produced (state still
  /// advances) but not retained in the buffer — used for state-rebuilding
  /// replay of batches whose downstream consumption already happened
  /// tentatively.
  /// `ctx` stamps the produced batch's latency lineage and places the
  /// run's modeled-cost span (no-op unless AttachSpans() was called).
  const BatchOutput& RunBatch(int64_t batch, std::vector<Tuple> inputs,
                              bool emit_downstream = true,
                              const BatchRunContext& ctx = {});

  /// Output buffer (oldest batch first).
  const std::deque<BatchOutput>& output_buffer() const {
    return output_buffer_;
  }

  /// The buffered output of batch `batch`, or nullptr if absent (not yet
  /// produced, trimmed, or skipped during recovery).
  const BatchOutput* FindBatch(int64_t batch) const;

  /// Drops buffered batches with index <= `up_to_batch` (checkpoint-driven
  /// trimming, Sec. II-B).
  void TrimOutputBuffer(int64_t up_to_batch);

  /// Total tuples currently buffered.
  int64_t BufferedTuples() const;
  /// Tuples buffered in batches with index > `after_batch`.
  int64_t BufferedTuplesAfter(int64_t after_batch) const;

  /// Serializes the full task checkpoint: next batch, dedup map, operator
  /// state, and output buffer (Sec. II-B: "computation state and output
  /// buffer"). Also resets the delta baseline.
  StatusOr<std::string> Snapshot();

  /// Restores a checkpoint taken with Snapshot().
  Status Restore(const std::string& checkpoint);

  /// True if this task can produce incremental checkpoints (its operator
  /// supports delta snapshots; sources cannot — their state is trivial).
  bool SupportsDeltaSnapshots() const {
    return op_ != nullptr && op_->SupportsDeltaSnapshots();
  }

  /// An incremental checkpoint: everything that changed since the last
  /// Snapshot()/SnapshotDelta() call.
  struct DeltaSnapshot {
    std::string blob;
    /// State tuples carried by the delta (cost accounting).
    int64_t state_tuples = 0;
  };
  StatusOr<DeltaSnapshot> SnapshotDelta();

  /// Applies a delta on top of the state restored from the immediately
  /// preceding Snapshot()/ApplyDelta() in the chain.
  Status ApplyDelta(const std::string& delta);

  /// Forgets all state and restarts at batch `next_batch` (Storm-style
  /// recovery from scratch).
  void Reset(int64_t next_batch);

  /// Skips forward to `next_batch` without touching state (used when a
  /// recovered task rejoins at the live frontier).
  void FastForward(int64_t next_batch);

  /// Number of tuples held in operator state (drives checkpoint size).
  int64_t StateSizeTuples() const {
    return op_ != nullptr ? op_->StateSizeTuples() : 0;
  }

  /// Cumulative number of input tuples processed (cost accounting).
  int64_t processed_tuples() const { return processed_tuples_; }
  /// Cumulative number of tuples emitted.
  int64_t emitted_tuples() const { return emitted_tuples_; }

  /// Per-producer highest sequence number accepted (the progress vector of
  /// Sec. VI, keyed by upstream task).
  const std::map<TaskId, uint64_t>& progress_vector() const {
    return progress_;
  }

  /// Registers shared counters bumped on every RunBatch (input tuples
  /// consumed and batches executed). Either may be nullptr; the job wires
  /// primaries, replicas, and shadow runtimes to different counters.
  void AttachMetrics(obs::Counter* tuples_counter,
                     obs::Counter* batches_counter) {
    tuples_counter_ = tuples_counter;
    batches_counter_ = batches_counter;
  }

  /// Registers a span profiler (nullptr detaches): every RunBatch then
  /// records a batch-process (or replay) span at ctx.now spanning the
  /// modeled CPU cost of `cost_per_tuple_us` per fresh input tuple
  /// (per produced tuple for sources).
  void AttachSpans(obs::SpanProfiler* spans, double cost_per_tuple_us) {
    spans_ = spans;
    cost_per_tuple_us_ = cost_per_tuple_us;
  }

 private:
  const Topology* topology_;
  TaskId id_;
  std::unique_ptr<OperatorFunction> op_;
  std::unique_ptr<SourceFunction> source_;

  bool alive_ = true;
  bool ever_failed_ = false;
  int64_t next_batch_ = 0;
  /// next_batch_ at the last Snapshot()/SnapshotDelta() (delta baseline).
  int64_t snapshot_next_batch_ = 0;
  int64_t processed_tuples_ = 0;
  int64_t emitted_tuples_ = 0;
  std::map<TaskId, uint64_t> progress_;
  std::deque<BatchOutput> output_buffer_;
  /// Scratch slot for the return value of RunBatch when emit_downstream is
  /// false.
  BatchOutput scratch_;
  obs::Counter* tuples_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
  double cost_per_tuple_us_ = 0.0;
};

}  // namespace ppa

#endif  // PPA_ENGINE_TASK_RUNTIME_H_
