#ifndef PPA_ENGINE_SERDE_H_
#define PPA_ENGINE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/status_or.h"

namespace ppa {

/// Minimal binary serialization used for operator state snapshots and
/// checkpoints. Fixed-width little-endian encoding; values are written and
/// read in the same order (no schema, no versioning — checkpoints never
/// outlive the process in this simulation).
class BinaryWriter {
 public:
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(std::string_view s) {
    PutU64(s.size());
    data_.append(s.data(), s.size());
  }

  const std::string& data() const& { return data_; }
  std::string data() && { return std::move(data_); }

 private:
  void PutRaw(const void* p, size_t n) {
    data_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string data_;
};

/// Reader counterpart of BinaryWriter. All getters return OutOfRange on a
/// truncated buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  StatusOr<uint64_t> GetU64() {
    uint64_t v = 0;
    PPA_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  StatusOr<int64_t> GetI64() {
    int64_t v = 0;
    PPA_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  StatusOr<double> GetDouble() {
    double v = 0;
    PPA_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  StatusOr<std::string> GetString() {
    PPA_ASSIGN_OR_RETURN(uint64_t n, GetU64());
    if (n > data_.size() - pos_) {
      return OutOfRange("truncated string");
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// True when the whole buffer has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  Status GetRaw(void* p, size_t n) {
    if (n > data_.size() - pos_) {
      return OutOfRange("truncated buffer");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return OkStatus();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace ppa

#endif  // PPA_ENGINE_SERDE_H_
