#include "engine/router.h"

#include <algorithm>

#include "common/hash.h"

namespace ppa {

const std::vector<TaskId> Router::kEmpty;

Router::Router(const Topology* topology) : topology_(topology) {
  consumers_.resize(static_cast<size_t>(topology->num_tasks()) *
                    static_cast<size_t>(topology->num_operators()));
  for (const Substream& s : topology->substreams()) {
    consumers_[static_cast<size_t>(s.from) *
                   static_cast<size_t>(topology->num_operators()) +
               static_cast<size_t>(s.to_op)]
        .push_back(s.to);
  }
  for (auto& list : consumers_) {
    std::sort(list.begin(), list.end());
  }
}

const std::vector<TaskId>& Router::Consumers(TaskId producer,
                                             OperatorId to_op) const {
  if (producer < 0 || producer >= topology_->num_tasks() || to_op < 0 ||
      to_op >= topology_->num_operators()) {
    return kEmpty;
  }
  return consumers_[static_cast<size_t>(producer) *
                        static_cast<size_t>(topology_->num_operators()) +
                    static_cast<size_t>(to_op)];
}

TaskId Router::Route(TaskId producer, OperatorId to_op,
                     const Tuple& tuple) const {
  const std::vector<TaskId>& consumers = Consumers(producer, to_op);
  if (consumers.empty()) {
    return kInvalidTaskId;
  }
  if (consumers.size() == 1) {
    return consumers[0];
  }
  // Salt the hash with the consuming operator so different groupings
  // partition the key space independently (as separate hash functions in a
  // real engine would); all edges into the same operator share the salt,
  // which keeps multi-stream joins co-partitioned.
  const uint64_t h =
      Mix64(Fnv1a64(tuple.key) ^ (static_cast<uint64_t>(to_op) *
                                  0x9e3779b97f4a7c15ULL));
  return consumers[h % consumers.size()];
}

size_t Router::RouteBatchTo(TaskId producer, OperatorId to_op,
                            const BatchOutput& batch, TaskId consumer,
                            std::vector<Tuple>* out) const {
  size_t routed = 0;
  for (const Tuple& t : batch.tuples) {
    if (Route(producer, to_op, t) != consumer) {
      continue;
    }
    ++routed;
    if (out != nullptr) {
      out->push_back(t);
    }
  }
  return routed;
}

}  // namespace ppa
