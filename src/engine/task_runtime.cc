#include "engine/task_runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/serde.h"

namespace ppa {
namespace {

void PutTuple(BinaryWriter* w, const Tuple& t) {
  w->PutString(t.key);
  w->PutI64(t.value);
  w->PutI64(t.batch);
  w->PutU64(t.seq);
  w->PutI64(t.producer);
}

StatusOr<Tuple> GetTuple(BinaryReader* r) {
  Tuple t;
  PPA_ASSIGN_OR_RETURN(t.key, r->GetString());
  PPA_ASSIGN_OR_RETURN(t.value, r->GetI64());
  PPA_ASSIGN_OR_RETURN(t.batch, r->GetI64());
  PPA_ASSIGN_OR_RETURN(uint64_t seq, r->GetU64());
  t.seq = seq;
  PPA_ASSIGN_OR_RETURN(int64_t producer, r->GetI64());
  t.producer = static_cast<TaskId>(producer);
  return t;
}

}  // namespace

TaskRuntime::TaskRuntime(const Topology* topology, TaskId id,
                         std::unique_ptr<OperatorFunction> op,
                         std::unique_ptr<SourceFunction> source)
    : topology_(topology),
      id_(id),
      op_(std::move(op)),
      source_(std::move(source)) {
  PPA_CHECK((op_ != nullptr) != (source_ != nullptr))
      << "exactly one of operator/source must be provided";
  PPA_CHECK(topology_->IsSourceTask(id) == (source_ != nullptr))
      << "source function must match topology role for "
      << topology_->TaskLabel(id);
}

const BatchOutput& TaskRuntime::RunBatch(int64_t batch,
                                         std::vector<Tuple> inputs,
                                         bool emit_downstream,
                                         const BatchRunContext& ctx) {
  PPA_CHECK(batch == next_batch_)
      << topology_->TaskLabel(id_) << " expected batch " << next_batch_
      << " got " << batch;
  int64_t work = 0;
  std::vector<Tuple> produced;
  if (is_source()) {
    produced = source_->NextBatch(batch, topology_->task(id_).index_in_op);
    work = static_cast<int64_t>(produced.size());
  } else {
    // Deterministic round-robin order: by producer, then sequence.
    std::sort(inputs.begin(), inputs.end(),
              [](const Tuple& a, const Tuple& b) {
                if (a.producer != b.producer) {
                  return a.producer < b.producer;
                }
                return a.seq < b.seq;
              });
    // Duplicate elimination by per-producer sequence number.
    std::vector<Tuple> fresh;
    fresh.reserve(inputs.size());
    for (Tuple& t : inputs) {
      auto it = progress_.find(t.producer);
      if (it != progress_.end() && t.seq <= it->second) {
        continue;  // Already processed (replayed duplicate).
      }
      progress_[t.producer] = t.seq;
      fresh.push_back(std::move(t));
    }
    processed_tuples_ += static_cast<int64_t>(fresh.size());
    work = static_cast<int64_t>(fresh.size());
    obs::Add(tuples_counter_, static_cast<int64_t>(fresh.size()));
    const TaskInfo& info = topology_->task(id_);
    BatchContext ctx(batch, info.index_in_op,
                     topology_->op(info.op).parallelism);
    op_->ProcessBatch(&ctx, fresh);
    produced = std::move(ctx.emitted());
  }
  PPA_CHECK(produced.size() < (size_t{1} << 24))
      << "batch output too large for sequence encoding";
  for (size_t i = 0; i < produced.size(); ++i) {
    Tuple& t = produced[i];
    t.batch = batch;
    // Deterministic per-batch sequence numbers: a replica or a
    // reset-and-replayed task reproduces the exact sequence of the
    // original run, so downstream duplicate elimination works across
    // recoveries (Sec. V-B).
    t.seq = (static_cast<uint64_t>(batch) << 24) + i;
    t.producer = id_;
  }
  emitted_tuples_ += static_cast<int64_t>(produced.size());
  obs::Add(batches_counter_);
  obs::RecordSpan(
      spans_,
      ctx.replay ? obs::SpanCategory::kReplay
                 : obs::SpanCategory::kBatchProcess,
      id_, ctx.now,
      ctx.now + Duration::Micros(static_cast<int64_t>(
                    static_cast<double>(work) * cost_per_tuple_us_)));
  ++next_batch_;
  if (emit_downstream) {
    output_buffer_.push_back(
        BatchOutput{batch, std::move(produced), ctx.ingest_at, ctx.hops});
    return output_buffer_.back();
  }
  scratch_ = BatchOutput{batch, std::move(produced), ctx.ingest_at, ctx.hops};
  return scratch_;
}

const BatchOutput* TaskRuntime::FindBatch(int64_t batch) const {
  // The buffer is ordered by batch index; binary search.
  auto it = std::lower_bound(
      output_buffer_.begin(), output_buffer_.end(), batch,
      [](const BatchOutput& b, int64_t key) { return b.batch < key; });
  if (it == output_buffer_.end() || it->batch != batch) {
    return nullptr;
  }
  return &*it;
}

void TaskRuntime::TrimOutputBuffer(int64_t up_to_batch) {
  while (!output_buffer_.empty() &&
         output_buffer_.front().batch <= up_to_batch) {
    output_buffer_.pop_front();
  }
}

int64_t TaskRuntime::BufferedTuples() const {
  int64_t total = 0;
  for (const BatchOutput& b : output_buffer_) {
    total += static_cast<int64_t>(b.tuples.size());
  }
  return total;
}

int64_t TaskRuntime::BufferedTuplesAfter(int64_t after_batch) const {
  int64_t total = 0;
  for (const BatchOutput& b : output_buffer_) {
    if (b.batch > after_batch) {
      total += static_cast<int64_t>(b.tuples.size());
    }
  }
  return total;
}

StatusOr<std::string> TaskRuntime::Snapshot() {
  snapshot_next_batch_ = next_batch_;
  BinaryWriter w;
  w.PutI64(next_batch_);
  w.PutU64(progress_.size());
  for (const auto& [producer, seq] : progress_) {
    w.PutI64(producer);
    w.PutU64(seq);
  }
  if (op_ != nullptr) {
    PPA_ASSIGN_OR_RETURN(std::string op_state, op_->SnapshotState());
    w.PutString(op_state);
  } else {
    w.PutString("");
  }
  w.PutU64(output_buffer_.size());
  for (const BatchOutput& b : output_buffer_) {
    w.PutI64(b.batch);
    w.PutI64(b.ingest_at.micros());
    w.PutI64(b.hops);
    w.PutU64(b.tuples.size());
    for (const Tuple& t : b.tuples) {
      PutTuple(&w, t);
    }
  }
  return std::move(w).data();
}

Status TaskRuntime::Restore(const std::string& checkpoint) {
  BinaryReader r(checkpoint);
  PPA_ASSIGN_OR_RETURN(next_batch_, r.GetI64());
  snapshot_next_batch_ = next_batch_;
  progress_.clear();
  PPA_ASSIGN_OR_RETURN(uint64_t entries, r.GetU64());
  for (uint64_t i = 0; i < entries; ++i) {
    PPA_ASSIGN_OR_RETURN(int64_t producer, r.GetI64());
    PPA_ASSIGN_OR_RETURN(uint64_t seq, r.GetU64());
    progress_[static_cast<TaskId>(producer)] = seq;
  }
  PPA_ASSIGN_OR_RETURN(std::string op_state, r.GetString());
  if (op_ != nullptr) {
    PPA_RETURN_IF_ERROR(op_->RestoreState(op_state));
  }
  output_buffer_.clear();
  PPA_ASSIGN_OR_RETURN(uint64_t batches, r.GetU64());
  for (uint64_t i = 0; i < batches; ++i) {
    BatchOutput b;
    PPA_ASSIGN_OR_RETURN(b.batch, r.GetI64());
    PPA_ASSIGN_OR_RETURN(int64_t ingest_us, r.GetI64());
    b.ingest_at = TimePoint::FromMicros(ingest_us);
    PPA_ASSIGN_OR_RETURN(int64_t hops, r.GetI64());
    b.hops = static_cast<int32_t>(hops);
    PPA_ASSIGN_OR_RETURN(uint64_t tuples, r.GetU64());
    b.tuples.reserve(tuples);
    for (uint64_t j = 0; j < tuples; ++j) {
      PPA_ASSIGN_OR_RETURN(Tuple t, GetTuple(&r));
      b.tuples.push_back(std::move(t));
    }
    output_buffer_.push_back(std::move(b));
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in task checkpoint");
  }
  return OkStatus();
}

StatusOr<TaskRuntime::DeltaSnapshot> TaskRuntime::SnapshotDelta() {
  if (!SupportsDeltaSnapshots()) {
    return Unimplemented("task does not support delta snapshots");
  }
  DeltaSnapshot delta;
  BinaryWriter w;
  w.PutI64(next_batch_);
  // Progress map: small, stored in full.
  w.PutU64(progress_.size());
  for (const auto& [producer, seq] : progress_) {
    w.PutI64(producer);
    w.PutU64(seq);
  }
  int64_t op_delta_tuples = 0;
  PPA_ASSIGN_OR_RETURN(std::string op_delta,
                       op_->SnapshotDelta(&op_delta_tuples));
  w.PutString(op_delta);
  // Output-buffer delta: batches produced since the previous snapshot in
  // the chain, plus the current trim level so a restored chain drops what
  // this instance already dropped.
  const int64_t trim_below =
      output_buffer_.empty() ? next_batch_ : output_buffer_.front().batch;
  w.PutI64(trim_below);
  uint64_t fresh = 0;
  for (const BatchOutput& b : output_buffer_) {
    fresh += b.batch >= snapshot_next_batch_ ? 1 : 0;
  }
  w.PutU64(fresh);
  for (const BatchOutput& b : output_buffer_) {
    if (b.batch < snapshot_next_batch_) {
      continue;
    }
    w.PutI64(b.batch);
    w.PutI64(b.ingest_at.micros());
    w.PutI64(b.hops);
    w.PutU64(b.tuples.size());
    for (const Tuple& t : b.tuples) {
      PutTuple(&w, t);
    }
    delta.state_tuples += static_cast<int64_t>(b.tuples.size());
  }
  delta.state_tuples += op_delta_tuples;
  delta.blob = std::move(w).data();
  snapshot_next_batch_ = next_batch_;
  return delta;
}

Status TaskRuntime::ApplyDelta(const std::string& delta) {
  if (!SupportsDeltaSnapshots()) {
    return Unimplemented("task does not support delta snapshots");
  }
  BinaryReader r(delta);
  PPA_ASSIGN_OR_RETURN(int64_t next_batch, r.GetI64());
  if (next_batch < next_batch_) {
    return InvalidArgument("delta precedes restored state");
  }
  progress_.clear();
  PPA_ASSIGN_OR_RETURN(uint64_t entries, r.GetU64());
  for (uint64_t i = 0; i < entries; ++i) {
    PPA_ASSIGN_OR_RETURN(int64_t producer, r.GetI64());
    PPA_ASSIGN_OR_RETURN(uint64_t seq, r.GetU64());
    progress_[static_cast<TaskId>(producer)] = seq;
  }
  PPA_ASSIGN_OR_RETURN(std::string op_delta, r.GetString());
  PPA_RETURN_IF_ERROR(op_->ApplyDelta(op_delta));
  PPA_ASSIGN_OR_RETURN(int64_t trim_below, r.GetI64());
  PPA_ASSIGN_OR_RETURN(uint64_t fresh, r.GetU64());
  for (uint64_t i = 0; i < fresh; ++i) {
    BatchOutput b;
    PPA_ASSIGN_OR_RETURN(b.batch, r.GetI64());
    PPA_ASSIGN_OR_RETURN(int64_t ingest_us, r.GetI64());
    b.ingest_at = TimePoint::FromMicros(ingest_us);
    PPA_ASSIGN_OR_RETURN(int64_t hops, r.GetI64());
    b.hops = static_cast<int32_t>(hops);
    PPA_ASSIGN_OR_RETURN(uint64_t tuples, r.GetU64());
    if (!output_buffer_.empty() && b.batch <= output_buffer_.back().batch) {
      return InvalidArgument("delta buffer batches out of order");
    }
    b.tuples.reserve(tuples);
    for (uint64_t j = 0; j < tuples; ++j) {
      PPA_ASSIGN_OR_RETURN(Tuple t, GetTuple(&r));
      b.tuples.push_back(std::move(t));
    }
    output_buffer_.push_back(std::move(b));
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in task delta");
  }
  TrimOutputBuffer(trim_below - 1);
  next_batch_ = next_batch;
  snapshot_next_batch_ = next_batch;
  return OkStatus();
}

void TaskRuntime::Reset(int64_t next_batch) {
  next_batch_ = next_batch;
  snapshot_next_batch_ = next_batch;
  progress_.clear();
  output_buffer_.clear();
  if (op_ != nullptr) {
    op_->Reset();
  }
}

void TaskRuntime::FastForward(int64_t next_batch) {
  PPA_CHECK(next_batch >= next_batch_);
  next_batch_ = next_batch;
}

}  // namespace ppa
