#ifndef PPA_ENGINE_OPERATOR_H_
#define PPA_ENGINE_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "engine/tuple.h"

namespace ppa {

/// Per-batch execution context handed to an operator function. Emission
/// goes into a staging vector; the engine assigns sequence numbers and
/// routes tuples afterwards.
class BatchContext {
 public:
  BatchContext(int64_t batch_index, int task_index, int parallelism)
      : batch_index_(batch_index),
        task_index_(task_index),
        parallelism_(parallelism) {}

  int64_t batch_index() const { return batch_index_; }
  /// Index of the executing task within its operator.
  int task_index() const { return task_index_; }
  /// Parallelism of the executing operator.
  int parallelism() const { return parallelism_; }

  /// Emits an output tuple; key/value are taken from `t`, the engine fills
  /// in provenance (batch, seq, producer).
  void Emit(std::string key, int64_t value) {
    Tuple t;
    t.key = std::move(key);
    t.value = value;
    emitted_.push_back(std::move(t));
  }

  std::vector<Tuple>& emitted() { return emitted_; }

 private:
  int64_t batch_index_;
  int task_index_;
  int parallelism_;
  std::vector<Tuple> emitted_;
};

/// A user-defined operator (Sec. II-A): a deterministic function from
/// (state, ordered batch of input tuples) to (state, output tuples).
/// Determinism is required by the fault-tolerance protocol: a restored or
/// actively replicated task must reproduce the primary's outputs
/// byte-for-byte given the same input order (Sec. V-B).
class OperatorFunction {
 public:
  virtual ~OperatorFunction() = default;

  /// Processes one batch. `inputs` is sorted by (producer, seq), the same
  /// deterministic round-robin order on every replica/restore.
  virtual void ProcessBatch(BatchContext* ctx,
                            const std::vector<Tuple>& inputs) = 0;

  /// Serializes the operator's computation state.
  virtual StatusOr<std::string> SnapshotState() = 0;

  /// Restores the state produced by SnapshotState().
  virtual Status RestoreState(const std::string& snapshot) = 0;

  /// True if the operator supports incremental (delta) snapshots — the
  /// delta-checkpoint optimization of Hwang et al. (ICDE'07), cited by the
  /// paper as compatible with PPA. Operators that return true must
  /// implement SnapshotDelta()/ApplyDelta().
  virtual bool SupportsDeltaSnapshots() const { return false; }

  /// Serializes only the state *changes* since the last SnapshotState() or
  /// SnapshotDelta() call, and reports how many state tuples the delta
  /// carries via `delta_tuples` (for cost accounting).
  virtual StatusOr<std::string> SnapshotDelta(int64_t* delta_tuples) {
    (void)delta_tuples;
    return Unimplemented("operator does not support delta snapshots");
  }

  /// Applies a delta on top of the state restored from the snapshot (or
  /// delta) that immediately preceded it.
  virtual Status ApplyDelta(const std::string& delta) {
    (void)delta;
    return Unimplemented("operator does not support delta snapshots");
  }

  /// Clears all state (fresh start, used by Storm-style source replay).
  virtual void Reset() = 0;

  /// Approximate number of tuples held in state; drives checkpoint size
  /// and load-time modeling.
  virtual int64_t StateSizeTuples() const = 0;
};

/// A deterministic source: batch `b` of task `i` must always contain the
/// same tuples, so the Storm-style source-replay recovery can regenerate
/// any past batch (Sec. VI-A).
class SourceFunction {
 public:
  virtual ~SourceFunction() = default;

  /// Produces the raw tuples of batch `batch_index` for source task
  /// `task_index` (key/value only; the engine fills provenance).
  virtual std::vector<Tuple> NextBatch(int64_t batch_index,
                                       int task_index) = 0;
};

using OperatorFactory = std::function<std::unique_ptr<OperatorFunction>()>;
using SourceFactory = std::function<std::unique_ptr<SourceFunction>()>;

}  // namespace ppa

#endif  // PPA_ENGINE_OPERATOR_H_
