#include "runtime/domain_analysis.h"

#include <algorithm>
#include <set>

#include "fidelity/metrics.h"

namespace ppa {

StatusOr<DomainFailureImpact> AnalyzeDomainFailure(const Topology& topology,
                                                   const Cluster& cluster,
                                                   const TaskSet& replicated,
                                                   int domain) {
  if (replicated.universe_size() != topology.num_tasks()) {
    return InvalidArgument("plan universe mismatch");
  }
  DomainFailureImpact impact;
  impact.domain = domain;
  TaskSet failed(topology.num_tasks());
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    const int node = cluster.NodeOfPrimary(t);
    if (node < 0 || cluster.DomainOf(node) != domain) {
      continue;
    }
    ++impact.tasks_hosted;
    // A replica placed outside the failing domain keeps the task alive.
    const int replica_node = cluster.NodeOfReplica(t);
    const bool covered = replicated.Contains(t) && replica_node >= 0 &&
                         cluster.DomainOf(replica_node) != domain;
    if (covered) {
      ++impact.tasks_covered;
    } else {
      failed.Add(t);
    }
  }
  impact.fidelity = ComputeOutputFidelity(topology, failed);
  return impact;
}

StatusOr<std::vector<DomainFailureImpact>> AnalyzeAllDomains(
    const Topology& topology, const Cluster& cluster,
    const TaskSet& replicated) {
  std::set<int> domains;
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    const int node = cluster.NodeOfPrimary(t);
    if (node >= 0) {
      domains.insert(cluster.DomainOf(node));
    }
  }
  std::vector<DomainFailureImpact> impacts;
  impacts.reserve(domains.size());
  for (int domain : domains) {
    PPA_ASSIGN_OR_RETURN(
        DomainFailureImpact impact,
        AnalyzeDomainFailure(topology, cluster, replicated, domain));
    impacts.push_back(impact);
  }
  std::stable_sort(impacts.begin(), impacts.end(),
                   [](const DomainFailureImpact& a,
                      const DomainFailureImpact& b) {
                     return a.fidelity < b.fidelity;
                   });
  return impacts;
}

}  // namespace ppa
