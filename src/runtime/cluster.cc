#include "runtime/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace ppa {

Cluster::Cluster(int num_workers, int num_standbys)
    : num_workers_(num_workers), num_standbys_(num_standbys) {
  PPA_CHECK(num_workers >= 1);
  PPA_CHECK(num_standbys >= 0);
  node_alive_.assign(static_cast<size_t>(num_nodes()), true);
  node_domain_.resize(static_cast<size_t>(num_nodes()));
  for (int node = 0; node < num_nodes(); ++node) {
    node_domain_[static_cast<size_t>(node)] = node;
  }
}

Status Cluster::AssignDomain(int node, int domain) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgument("AssignDomain: bad node id");
  }
  node_domain_[static_cast<size_t>(node)] = domain;
  return OkStatus();
}

int Cluster::DomainOf(int node) const {
  PPA_CHECK(node >= 0 && node < num_nodes());
  return node_domain_[static_cast<size_t>(node)];
}

std::vector<int> Cluster::NodesInDomain(int domain) const {
  std::vector<int> nodes;
  for (int node = 0; node < num_nodes(); ++node) {
    if (node_domain_[static_cast<size_t>(node)] == domain) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

bool Cluster::NodeAlive(int node) const {
  PPA_CHECK(node >= 0 && node < num_nodes());
  return node_alive_[static_cast<size_t>(node)];
}

void Cluster::FailNode(int node) {
  PPA_CHECK(node >= 0 && node < num_nodes());
  node_alive_[static_cast<size_t>(node)] = false;
  obs::Add(node_failures_counter_);
}

void Cluster::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    node_failures_counter_ = nullptr;
    replica_placements_counter_ = nullptr;
    return;
  }
  node_failures_counter_ = registry->counter("cluster.node_failures");
  replica_placements_counter_ = registry->counter("cluster.replica_placements");
}

void Cluster::ReviveNode(int node) {
  PPA_CHECK(node >= 0 && node < num_nodes());
  node_alive_[static_cast<size_t>(node)] = true;
}

void Cluster::EnsureTask(TaskId task) {
  PPA_CHECK(task >= 0);
  const size_t need = static_cast<size_t>(task) + 1;
  if (primary_node_.size() < need) {
    primary_node_.resize(need, -1);
    replica_node_.resize(need, -1);
  }
}

void Cluster::PlacePrimariesRoundRobin(const Topology& topology) {
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    EnsureTask(t);
    primary_node_[static_cast<size_t>(t)] = t % num_workers_;
  }
}

Status Cluster::PlacePrimary(TaskId task, int node) {
  if (node < 0 || node >= num_workers_) {
    return InvalidArgument("PlacePrimary: node is not a worker");
  }
  EnsureTask(task);
  primary_node_[static_cast<size_t>(task)] = node;
  return OkStatus();
}

Status Cluster::PlaceReplicas(const std::vector<TaskId>& tasks) {
  if (num_standbys_ == 0 && !tasks.empty()) {
    return FailedPrecondition("no standby nodes for replicas");
  }
  int next = 0;
  for (TaskId t : tasks) {
    EnsureTask(t);
    replica_node_[static_cast<size_t>(t)] = num_workers_ + next;
    next = (next + 1) % num_standbys_;
    obs::Add(replica_placements_counter_);
  }
  return OkStatus();
}

Status Cluster::PlaceReplicaAuto(TaskId task) {
  if (num_standbys_ == 0) {
    return FailedPrecondition("no standby nodes for replicas");
  }
  const int primary = NodeOfPrimary(task);
  const int primary_domain = primary >= 0 ? DomainOf(primary) : -1;
  int best_node = -1;
  size_t best_load = 0;
  bool best_outside_domain = false;
  for (int node = num_workers_; node < num_nodes(); ++node) {
    if (!NodeAlive(node)) {
      continue;
    }
    const size_t load = ReplicasOn(node).size();
    const bool outside = DomainOf(node) != primary_domain;
    // Prefer a node outside the primary's failure domain; within each
    // class, the least-loaded node wins.
    if (best_node < 0 || (outside && !best_outside_domain) ||
        (outside == best_outside_domain && load < best_load)) {
      best_node = node;
      best_load = load;
      best_outside_domain = outside;
    }
  }
  if (best_node < 0) {
    return ResourceExhausted("no alive standby node available");
  }
  EnsureTask(task);
  replica_node_[static_cast<size_t>(task)] = best_node;
  obs::Add(replica_placements_counter_);
  return OkStatus();
}

void Cluster::RemoveReplica(TaskId task) {
  if (task >= 0 && static_cast<size_t>(task) < replica_node_.size()) {
    replica_node_[static_cast<size_t>(task)] = -1;
  }
}

int Cluster::NodeOfPrimary(TaskId task) const {
  if (task < 0 || static_cast<size_t>(task) >= primary_node_.size()) {
    return -1;
  }
  return primary_node_[static_cast<size_t>(task)];
}

int Cluster::NodeOfReplica(TaskId task) const {
  if (task < 0 || static_cast<size_t>(task) >= replica_node_.size()) {
    return -1;
  }
  return replica_node_[static_cast<size_t>(task)];
}

std::vector<TaskId> Cluster::PrimariesOn(int node) const {
  std::vector<TaskId> tasks;
  for (size_t t = 0; t < primary_node_.size(); ++t) {
    if (primary_node_[t] == node) {
      tasks.push_back(static_cast<TaskId>(t));
    }
  }
  return tasks;
}

std::vector<TaskId> Cluster::ReplicasOn(int node) const {
  std::vector<TaskId> tasks;
  for (size_t t = 0; t < replica_node_.size(); ++t) {
    if (replica_node_[t] == node) {
      tasks.push_back(static_cast<TaskId>(t));
    }
  }
  return tasks;
}

std::vector<int> Cluster::NodesHostingPrimaries() const {
  std::vector<int> nodes;
  for (int node : primary_node_) {
    if (node >= 0 &&
        std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace ppa
