#include "runtime/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace ppa {

Cluster::Cluster(int num_workers, int num_standbys)
    : pool_(std::make_shared<NodePool>(num_workers, num_standbys)) {}

Cluster::Cluster(std::shared_ptr<NodePool> pool) : pool_(std::move(pool)) {
  PPA_CHECK(pool_ != nullptr);
}

Status Cluster::AssignDomain(int node, int domain) {
  return pool_->AssignDomain(node, domain);
}

int Cluster::DomainOf(int node) const { return pool_->DomainOf(node); }

std::vector<int> Cluster::NodesInDomain(int domain) const {
  return pool_->NodesInDomain(domain);
}

void Cluster::FailNode(int node) {
  pool_->FailNode(node);
  obs::Add(node_failures_counter_);
}

void Cluster::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    node_failures_counter_ = nullptr;
    replica_placements_counter_ = nullptr;
    return;
  }
  node_failures_counter_ = registry->counter("cluster.node_failures");
  replica_placements_counter_ = registry->counter("cluster.replica_placements");
}

void Cluster::ReviveNode(int node) { pool_->ReviveNode(node); }

void Cluster::SetConstraints(PlacementConstraints constraints) {
  constraints_ = std::move(constraints);
}

void Cluster::EnsureTask(TaskId task) {
  PPA_CHECK(task >= 0);
  const size_t need = static_cast<size_t>(task) + 1;
  if (primary_node_.size() < need) {
    primary_node_.resize(need, -1);
    replica_node_.resize(need, -1);
  }
}

void Cluster::SetPrimaryNode(TaskId task, int node) {
  EnsureTask(task);
  const int old = primary_node_[static_cast<size_t>(task)];
  if (old == node) {
    return;
  }
  if (old >= 0) {
    pool_->AddPrimaryLoad(old, -1);
  }
  if (node >= 0) {
    pool_->AddPrimaryLoad(node, 1);
  }
  primary_node_[static_cast<size_t>(task)] = node;
}

void Cluster::SetReplicaNode(TaskId task, int node) {
  EnsureTask(task);
  const int old = replica_node_[static_cast<size_t>(task)];
  if (old == node) {
    return;
  }
  if (old >= 0) {
    pool_->AddReplicaLoad(old, -1);
    --placed_replicas_;
  }
  if (node >= 0) {
    pool_->AddReplicaLoad(node, 1);
    ++placed_replicas_;
  }
  replica_node_[static_cast<size_t>(task)] = node;
}

void Cluster::PlacePrimariesRoundRobin(const Topology& topology) {
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    SetPrimaryNode(t, t % num_workers());
  }
}

Status Cluster::PlacePrimary(TaskId task, int node) {
  if (node < 0 || node >= num_workers()) {
    return InvalidArgument("PlacePrimary: node is not a worker");
  }
  SetPrimaryNode(task, node);
  return OkStatus();
}

Status Cluster::PlaceReplicas(const std::vector<TaskId>& tasks) {
  if (num_standbys() == 0 && !tasks.empty()) {
    return FailedPrecondition("no standby nodes for replicas");
  }
  int next = 0;
  for (TaskId t : tasks) {
    EnsureTask(t);
    if (constraints_.replica_ceiling >= 0 && NodeOfReplica(t) < 0 &&
        placed_replicas_ >= constraints_.replica_ceiling) {
      return ResourceExhausted("replica budget ceiling reached");
    }
    SetReplicaNode(t, num_workers() + next);
    next = (next + 1) % num_standbys();
    obs::Add(replica_placements_counter_);
  }
  return OkStatus();
}

bool Cluster::ReplicaNodeExcluded(int node) const {
  if (!constraints_.replica_affinity.empty() &&
      std::find(constraints_.replica_affinity.begin(),
                constraints_.replica_affinity.end(),
                node) == constraints_.replica_affinity.end()) {
    return true;
  }
  return std::find(constraints_.replica_anti_affinity.begin(),
                   constraints_.replica_anti_affinity.end(),
                   node) != constraints_.replica_anti_affinity.end();
}

int64_t Cluster::ViewReplicasInDomain(int domain) const {
  int64_t count = 0;
  for (int node : replica_node_) {
    if (node >= 0 && pool_->DomainOf(node) == domain) {
      ++count;
    }
  }
  return count;
}

Status Cluster::PlaceReplicaAuto(TaskId task) {
  if (num_standbys() == 0) {
    return FailedPrecondition("no standby nodes for replicas");
  }
  EnsureTask(task);
  if (constraints_.replica_ceiling >= 0 && NodeOfReplica(task) < 0 &&
      placed_replicas_ >= constraints_.replica_ceiling) {
    return ResourceExhausted("replica budget ceiling reached");
  }
  const int primary = NodeOfPrimary(task);
  const int primary_domain = primary >= 0 ? DomainOf(primary) : -1;
  int best_node = -1;
  int64_t best_load = 0;
  int64_t best_domain_load = 0;
  bool best_outside_domain = false;
  // Ascending node-id scan with strictly-better replacement: ties on
  // every criterion break toward the lowest node id (see header).
  for (int node = num_workers(); node < num_nodes(); ++node) {
    if (!NodeAlive(node) || ReplicaNodeExcluded(node)) {
      continue;
    }
    const int64_t load = pool_->ReplicaLoad(node);
    const bool outside = DomainOf(node) != primary_domain;
    const int64_t domain_load =
        constraints_.spread_replicas_across_domains
            ? ViewReplicasInDomain(DomainOf(node))
            : 0;
    // Prefer a node outside the primary's failure domain; within each
    // class, the least-populated failure domain (when spreading), then
    // the globally least-loaded node wins.
    bool better = false;
    if (best_node < 0 || (outside && !best_outside_domain)) {
      better = true;
    } else if (outside == best_outside_domain) {
      if (domain_load != best_domain_load) {
        better = domain_load < best_domain_load;
      } else {
        better = load < best_load;
      }
    }
    if (better) {
      best_node = node;
      best_load = load;
      best_domain_load = domain_load;
      best_outside_domain = outside;
    }
  }
  if (best_node < 0) {
    return ResourceExhausted("no alive standby node available");
  }
  SetReplicaNode(task, best_node);
  obs::Add(replica_placements_counter_);
  return OkStatus();
}

void Cluster::RemoveReplica(TaskId task) {
  if (task >= 0 && static_cast<size_t>(task) < replica_node_.size()) {
    SetReplicaNode(task, -1);
  }
}

Status Cluster::PromoteReplicaToPrimary(TaskId task) {
  const int node = NodeOfReplica(task);
  if (node < 0) {
    return FailedPrecondition("task has no replica placement to promote");
  }
  SetReplicaNode(task, -1);
  SetPrimaryNode(task, node);
  return OkStatus();
}

void Cluster::ReleaseAllPlacements() {
  for (size_t t = 0; t < primary_node_.size(); ++t) {
    SetPrimaryNode(static_cast<TaskId>(t), -1);
    SetReplicaNode(static_cast<TaskId>(t), -1);
  }
}

int Cluster::NodeOfPrimary(TaskId task) const {
  if (task < 0 || static_cast<size_t>(task) >= primary_node_.size()) {
    return -1;
  }
  return primary_node_[static_cast<size_t>(task)];
}

int Cluster::NodeOfReplica(TaskId task) const {
  if (task < 0 || static_cast<size_t>(task) >= replica_node_.size()) {
    return -1;
  }
  return replica_node_[static_cast<size_t>(task)];
}

std::vector<TaskId> Cluster::PrimariesOn(int node) const {
  std::vector<TaskId> tasks;
  for (size_t t = 0; t < primary_node_.size(); ++t) {
    if (primary_node_[t] == node) {
      tasks.push_back(static_cast<TaskId>(t));
    }
  }
  return tasks;
}

std::vector<TaskId> Cluster::ReplicasOn(int node) const {
  std::vector<TaskId> tasks;
  for (size_t t = 0; t < replica_node_.size(); ++t) {
    if (replica_node_[t] == node) {
      tasks.push_back(static_cast<TaskId>(t));
    }
  }
  return tasks;
}

std::vector<int> Cluster::NodesHostingPrimaries() const {
  std::vector<int> nodes;
  for (int node : primary_node_) {
    if (node >= 0 &&
        std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace ppa
