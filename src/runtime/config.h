#ifndef PPA_RUNTIME_CONFIG_H_
#define PPA_RUNTIME_CONFIG_H_

#include <string_view>

#include "af/error_budget.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "ft/recovery_model.h"

namespace ppa {

/// Fault-tolerance strategy of a streaming job (Sec. VI-A compares all of
/// them).
enum class FtMode {
  /// No fault tolerance: failed tasks never recover (for tests).
  kNone,
  /// Periodic checkpoints + upstream buffer replay (Spark-Streaming-style
  /// passive recovery).
  kCheckpoint,
  /// Storm's default: rebuild failed tasks by replaying source data from
  /// the beginning of the unfinished windows through the topology.
  kSourceReplay,
  /// One active replica per task; takeover on failure.
  kActiveReplication,
  /// The paper's scheme: checkpoints for everyone, active replicas for a
  /// selected subset, tentative outputs while passive recovery runs.
  kPpa,
};

/// Stable name of a fault-tolerance mode (e.g. "ppa").
std::string_view FtModeToString(FtMode mode);

/// Configuration of a simulated streaming job.
struct JobConfig {
  /// Batch interval (the paper uses 1-second sliding steps).
  Duration batch_interval = Duration::Seconds(1);
  /// Master heartbeat-based failure-detection period (paper: 5 s).
  Duration detection_interval = Duration::Seconds(5);
  /// Checkpoint period (Fig. 7-10 vary 5/15/30 s).
  Duration checkpoint_interval = Duration::Seconds(15);
  /// Replica output-buffer synchronization period (Fig. 7-8 vary 5/30 s).
  Duration replica_sync_interval = Duration::Seconds(5);

  FtMode ft_mode = FtMode::kCheckpoint;

  /// Recovery exactness contract (DESIGN.md §17): kPpa keeps every
  /// checkpoint (exact recovery, the default); kApprox thins checkpoints
  /// within `error_budget` for every task; kHybrid keeps the
  /// actively-replicated (high-weight) tasks exact and thins the rest.
  /// kApprox requires a checkpoint-bearing ft_mode (kCheckpoint or
  /// kPpa); kHybrid requires ft_mode = kPpa.
  af::RecoveryMode recovery_mode = af::RecoveryMode::kPpa;

  /// Divergence tolerance gating checkpoint thinning when
  /// `recovery_mode` != kPpa (ignored otherwise).
  af::ErrorBudgetSpec error_budget;

  /// Recovery latency cost model.
  RecoveryCostModel recovery;

  /// CPU cost accounting (Fig. 9): per-tuple processing cost and
  /// per-checkpoint cost (fixed + per state tuple).
  double process_cost_per_tuple_us = 2.0;
  double checkpoint_cost_per_state_tuple_us = 0.5;
  double checkpoint_fixed_cost_us = 2000.0;

  /// Cluster shape.
  int num_worker_nodes = 15;
  int num_standby_nodes = 15;

  /// Window length (in batches) assumed by Storm-style source replay when
  /// sizing the replay span.
  int64_t window_batches = 30;

  /// Stagger per-task checkpoints across the interval (checkpoints of
  /// different nodes are asynchronous, Sec. I); disable for tests that
  /// need aligned checkpoints.
  bool stagger_checkpoints = true;

  /// Take incremental (delta) checkpoints between full ones for operators
  /// that support them — the delta-checkpoint optimization the paper cites
  /// as compatible with PPA. A full base checkpoint is still taken every
  /// `max_delta_chain` intervals (and recovery loads base + deltas).
  bool delta_checkpoints = false;
  int max_delta_chain = 8;

  /// Generate tentative outputs (batch-over punctuations on behalf of
  /// failed tasks) once a failure is detected. Forced on for kPpa; the
  /// pure baselines of Sec. VI-A block instead.
  bool tentative_outputs = false;

  /// Record metrics and sim-time trace events (src/obs/) while the job
  /// runs. Recording is write-only — it never feeds back into
  /// scheduling — so disabling it must not change any simulation output
  /// (tests/obs_test.cc pins this).
  bool observability = true;

  /// Size of the always-on flight-recorder ring (the bounded post-mortem
  /// tail of trace events that keeps recording even with `observability`
  /// off — see obs::FlightRecorder). 0 disables it. Like the trace, the
  /// recorder is write-only and never affects simulation output.
  int flight_recorder_capacity = 256;

  /// Checks the configuration for values the simulation cannot run with:
  /// non-positive batch/detection/checkpoint/replica-sync intervals,
  /// negative CPU costs, `max_delta_chain` < 1, non-positive
  /// `window_batches`, a cluster without worker nodes, or a
  /// recovery_mode/ft_mode/error_budget combination outside the af
  /// contract above. Returns
  /// InvalidArgument naming the offending field; StreamingJob construction
  /// PPA_CHECK-fails on an invalid config.
  [[nodiscard]] Status Validate() const;

  /// The paper's cluster calibration with pure checkpoint-based fault
  /// tolerance: 1 s batches, 5 s heartbeat detection, 19 worker nodes
  /// (4 source + 15 processing) and 15 standby nodes, recovery cost model
  /// and CPU costs calibrated to reproduce Fig. 9's checkpoint-to-
  /// processing ratios. Benchmarks and tests start from this preset.
  [[nodiscard]] static JobConfig CheckpointDefaults();

  /// CheckpointDefaults() with `ft_mode = kPpa` (tentative outputs are
  /// forced on by StreamingJob for that mode).
  [[nodiscard]] static JobConfig PpaDefaults();
};

}  // namespace ppa

#endif  // PPA_RUNTIME_CONFIG_H_
