#include "runtime/scenario.h"

#include <sstream>
#include <utility>

namespace ppa {

std::string_view ScenarioEventKindToString(ScenarioEvent::Kind kind) {
  switch (kind) {
    case ScenarioEvent::Kind::kNodeFailure:
      return "fail-node";
    case ScenarioEvent::Kind::kDomainFailure:
      return "fail-domain";
    case ScenarioEvent::Kind::kCorrelatedFailure:
      return "fail-correlated";
    case ScenarioEvent::Kind::kApplyPlan:
      return "apply-plan";
    case ScenarioEvent::Kind::kReconcile:
      return "reconcile";
    case ScenarioEvent::Kind::kReviveNode:
      return "revive-node";
    case ScenarioEvent::Kind::kReviveDomain:
      return "revive-domain";
  }
  return "?";
}

StatusOr<ScenarioEvent::Kind> ScenarioEventKindFromString(
    std::string_view name) {
  for (ScenarioEvent::Kind kind :
       {ScenarioEvent::Kind::kNodeFailure, ScenarioEvent::Kind::kDomainFailure,
        ScenarioEvent::Kind::kCorrelatedFailure,
        ScenarioEvent::Kind::kApplyPlan, ScenarioEvent::Kind::kReconcile,
        ScenarioEvent::Kind::kReviveNode,
        ScenarioEvent::Kind::kReviveDomain}) {
    if (ScenarioEventKindToString(kind) == name) {
      return kind;
    }
  }
  return InvalidArgument("unknown scenario event kind '" + std::string(name) +
                         "'");
}

ScenarioRunner::ScenarioRunner(StreamingJob* job) : job_(job) {}

Status ScenarioRunner::Run(std::vector<ScenarioEvent> events) {
  if (ran_) {
    return FailedPrecondition("scenario already scheduled");
  }
  ran_ = true;
  scheduled_ = events.size();
  for (ScenarioEvent& event : events) {
    (void)job_->backend()->ScheduleAfterOn(
        job_->strand(), event.at,
        [this, event = std::move(event)] { Execute(event); });
  }
  return OkStatus();
}

void ScenarioRunner::Execute(const ScenarioEvent& event) {
  Status status;
  switch (event.kind) {
    case ScenarioEvent::Kind::kNodeFailure:
      status = job_->InjectNodeFailure(event.node);
      break;
    case ScenarioEvent::Kind::kDomainFailure:
      status = job_->InjectDomainFailure(event.domain);
      break;
    case ScenarioEvent::Kind::kCorrelatedFailure:
      status = job_->InjectCorrelatedFailure(event.include_sources);
      break;
    case ScenarioEvent::Kind::kApplyPlan: {
      TaskSet plan(job_->topology().num_tasks());
      for (TaskId t : event.plan) {
        plan.Add(t);
      }
      status = job_->ApplyActiveReplicaSet(plan);
      break;
    }
    case ScenarioEvent::Kind::kReconcile:
      status = job_->ReconcileTentativeOutputs().status();
      break;
    case ScenarioEvent::Kind::kReviveNode:
      status = job_->ReviveNode(event.node);
      break;
    case ScenarioEvent::Kind::kReviveDomain:
      status = job_->ReviveDomain(event.domain);
      break;
  }
  outcomes_.push_back(std::move(status));
  ++executed_;
}

Status ScenarioRunner::FirstError() const {
  for (const Status& s : outcomes_) {
    if (!s.ok()) {
      return s;
    }
  }
  return OkStatus();
}

StatusOr<TaskId> FindTaskByLabel(const Topology& topology,
                                 std::string_view label) {
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    if (topology.TaskLabel(t) == label) {
      return t;
    }
  }
  return NotFound("no task labelled '" + std::string(label) + "'");
}

StatusOr<std::vector<ScenarioEvent>> ParseScenario(const Topology& topology,
                                                   std::string_view script) {
  std::vector<ScenarioEvent> events;
  std::istringstream in{std::string(script)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    std::istringstream line(raw);
    std::string at_word;
    if (!(line >> at_word)) {
      continue;
    }
    auto err = [&](const std::string& message) {
      return InvalidArgument("line " + std::to_string(line_no) + ": " +
                             message);
    };
    double seconds = 0;
    std::string verb;
    if (at_word != "at" || !(line >> seconds >> verb)) {
      return err("expected: at <seconds> <event> ...");
    }
    ScenarioEvent event;
    event.at = Duration::Seconds(seconds);
    if (verb == "fail-node") {
      event.kind = ScenarioEvent::Kind::kNodeFailure;
      if (!(line >> event.node)) {
        return err("expected: fail-node <node>");
      }
    } else if (verb == "fail-domain") {
      event.kind = ScenarioEvent::Kind::kDomainFailure;
      if (!(line >> event.domain)) {
        return err("expected: fail-domain <domain>");
      }
    } else if (verb == "fail-correlated") {
      event.kind = ScenarioEvent::Kind::kCorrelatedFailure;
      std::string option;
      if (line >> option) {
        if (option != "with-sources") {
          return err("unknown option '" + option + "'");
        }
        event.include_sources = true;
      }
    } else if (verb == "apply-plan") {
      event.kind = ScenarioEvent::Kind::kApplyPlan;
      std::string label;
      while (line >> label) {
        PPA_ASSIGN_OR_RETURN(TaskId t, FindTaskByLabel(topology, label));
        event.plan.push_back(t);
      }
    } else if (verb == "reconcile") {
      event.kind = ScenarioEvent::Kind::kReconcile;
    } else if (verb == "revive-node") {
      event.kind = ScenarioEvent::Kind::kReviveNode;
      if (!(line >> event.node)) {
        return err("expected: revive-node <node>");
      }
    } else if (verb == "revive-domain") {
      event.kind = ScenarioEvent::Kind::kReviveDomain;
      if (!(line >> event.domain)) {
        return err("expected: revive-domain <domain>");
      }
    } else {
      return err("unknown event '" + verb + "'");
    }
    events.push_back(std::move(event));
  }
  return events;
}

JsonValue ScenarioEventToJson(const ScenarioEvent& event) {
  JsonValue json = JsonValue::Object();
  json.Set("at_us", event.at.micros());
  json.Set("kind", std::string(ScenarioEventKindToString(event.kind)));
  switch (event.kind) {
    case ScenarioEvent::Kind::kNodeFailure:
    case ScenarioEvent::Kind::kReviveNode:
      json.Set("node", event.node);
      break;
    case ScenarioEvent::Kind::kDomainFailure:
    case ScenarioEvent::Kind::kReviveDomain:
      json.Set("domain", event.domain);
      break;
    case ScenarioEvent::Kind::kCorrelatedFailure:
      json.Set("include_sources", event.include_sources);
      break;
    case ScenarioEvent::Kind::kApplyPlan: {
      JsonValue plan = JsonValue::Array();
      for (TaskId t : event.plan) {
        plan.Append(static_cast<int64_t>(t));
      }
      json.Set("plan", std::move(plan));
      break;
    }
    case ScenarioEvent::Kind::kReconcile:
      break;
  }
  return json;
}

JsonValue ScenarioToJson(const std::vector<ScenarioEvent>& events) {
  JsonValue json = JsonValue::Array();
  for (const ScenarioEvent& event : events) {
    json.Append(ScenarioEventToJson(event));
  }
  return json;
}

StatusOr<ScenarioEvent> ScenarioEventFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return InvalidArgument("scenario event must be a JSON object");
  }
  const JsonValue* at = json.Find("at_us");
  if (at == nullptr || !at->is_number()) {
    return InvalidArgument("scenario event needs a numeric 'at_us'");
  }
  const JsonValue* kind = json.Find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return InvalidArgument("scenario event needs a string 'kind'");
  }
  ScenarioEvent event;
  event.at = Duration::Micros(at->AsInt());
  PPA_ASSIGN_OR_RETURN(event.kind,
                       ScenarioEventKindFromString(kind->AsString()));
  auto require_int = [&json](const char* key) -> StatusOr<int> {
    const JsonValue* v = json.Find(key);
    if (v == nullptr || !v->is_number()) {
      return InvalidArgument(std::string("scenario event needs a numeric '") +
                             key + "'");
    }
    return static_cast<int>(v->AsInt());
  };
  switch (event.kind) {
    case ScenarioEvent::Kind::kNodeFailure:
    case ScenarioEvent::Kind::kReviveNode: {
      PPA_ASSIGN_OR_RETURN(event.node, require_int("node"));
      break;
    }
    case ScenarioEvent::Kind::kDomainFailure:
    case ScenarioEvent::Kind::kReviveDomain: {
      PPA_ASSIGN_OR_RETURN(event.domain, require_int("domain"));
      break;
    }
    case ScenarioEvent::Kind::kCorrelatedFailure: {
      const JsonValue* sources = json.Find("include_sources");
      if (sources != nullptr) {
        if (!sources->is_bool()) {
          return InvalidArgument("'include_sources' must be a bool");
        }
        event.include_sources = sources->AsBool();
      }
      break;
    }
    case ScenarioEvent::Kind::kApplyPlan: {
      const JsonValue* plan = json.Find("plan");
      if (plan == nullptr || !plan->is_array()) {
        return InvalidArgument("apply-plan event needs a 'plan' array");
      }
      for (size_t i = 0; i < plan->size(); ++i) {
        const JsonValue& t = plan->at(i);
        if (!t.is_number()) {
          return InvalidArgument("'plan' entries must be task ids");
        }
        event.plan.push_back(static_cast<TaskId>(t.AsInt()));
      }
      break;
    }
    case ScenarioEvent::Kind::kReconcile:
      break;
  }
  return event;
}

StatusOr<std::vector<ScenarioEvent>> ScenarioFromJson(const JsonValue& json) {
  if (!json.is_array()) {
    return InvalidArgument("scenario must be a JSON array of events");
  }
  std::vector<ScenarioEvent> events;
  events.reserve(json.size());
  for (size_t i = 0; i < json.size(); ++i) {
    auto event = ScenarioEventFromJson(json.at(i));
    if (!event.ok()) {
      return InvalidArgument("event " + std::to_string(i) + ": " +
                             event.status().message());
    }
    events.push_back(*std::move(event));
  }
  return events;
}

StatusOr<std::vector<ScenarioEvent>> ParseScenarioJson(
    std::string_view text) {
  PPA_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  return ScenarioFromJson(json);
}

}  // namespace ppa
