#include "runtime/scenario.h"

#include <sstream>

namespace ppa {

ScenarioRunner::ScenarioRunner(StreamingJob* job, EventLoop* loop)
    : job_(job), loop_(loop) {}

Status ScenarioRunner::Run(std::vector<ScenarioEvent> events) {
  if (scheduled_ > 0) {
    return FailedPrecondition("scenario already scheduled");
  }
  scheduled_ = events.size();
  for (ScenarioEvent& event : events) {
    loop_->ScheduleAfter(event.at, [this, event = std::move(event)] {
      Execute(event);
    });
  }
  return OkStatus();
}

void ScenarioRunner::Execute(const ScenarioEvent& event) {
  Status status;
  switch (event.kind) {
    case ScenarioEvent::Kind::kNodeFailure:
      status = job_->InjectNodeFailure(event.node);
      break;
    case ScenarioEvent::Kind::kDomainFailure:
      status = job_->InjectDomainFailure(event.domain);
      break;
    case ScenarioEvent::Kind::kCorrelatedFailure:
      status = job_->InjectCorrelatedFailure(event.include_sources);
      break;
    case ScenarioEvent::Kind::kApplyPlan: {
      TaskSet plan(job_->topology().num_tasks());
      for (TaskId t : event.plan) {
        plan.Add(t);
      }
      status = job_->ApplyActiveReplicaSet(plan);
      break;
    }
    case ScenarioEvent::Kind::kReconcile:
      status = job_->ReconcileTentativeOutputs().status();
      break;
  }
  outcomes_.push_back(std::move(status));
  ++executed_;
}

Status ScenarioRunner::FirstError() const {
  for (const Status& s : outcomes_) {
    if (!s.ok()) {
      return s;
    }
  }
  return OkStatus();
}

StatusOr<TaskId> FindTaskByLabel(const Topology& topology,
                                 std::string_view label) {
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    if (topology.TaskLabel(t) == label) {
      return t;
    }
  }
  return NotFound("no task labelled '" + std::string(label) + "'");
}

StatusOr<std::vector<ScenarioEvent>> ParseScenario(const Topology& topology,
                                                   std::string_view script) {
  std::vector<ScenarioEvent> events;
  std::istringstream in{std::string(script)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    std::istringstream line(raw);
    std::string at_word;
    if (!(line >> at_word)) {
      continue;
    }
    auto err = [&](const std::string& message) {
      return InvalidArgument("line " + std::to_string(line_no) + ": " +
                             message);
    };
    double seconds = 0;
    std::string verb;
    if (at_word != "at" || !(line >> seconds >> verb)) {
      return err("expected: at <seconds> <event> ...");
    }
    ScenarioEvent event;
    event.at = Duration::Seconds(seconds);
    if (verb == "fail-node") {
      event.kind = ScenarioEvent::Kind::kNodeFailure;
      if (!(line >> event.node)) {
        return err("expected: fail-node <node>");
      }
    } else if (verb == "fail-domain") {
      event.kind = ScenarioEvent::Kind::kDomainFailure;
      if (!(line >> event.domain)) {
        return err("expected: fail-domain <domain>");
      }
    } else if (verb == "fail-correlated") {
      event.kind = ScenarioEvent::Kind::kCorrelatedFailure;
      std::string option;
      if (line >> option) {
        if (option != "with-sources") {
          return err("unknown option '" + option + "'");
        }
        event.include_sources = true;
      }
    } else if (verb == "apply-plan") {
      event.kind = ScenarioEvent::Kind::kApplyPlan;
      std::string label;
      while (line >> label) {
        PPA_ASSIGN_OR_RETURN(TaskId t, FindTaskByLabel(topology, label));
        event.plan.push_back(t);
      }
    } else if (verb == "reconcile") {
      event.kind = ScenarioEvent::Kind::kReconcile;
    } else {
      return err("unknown event '" + verb + "'");
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace ppa
