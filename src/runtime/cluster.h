#ifndef PPA_RUNTIME_CLUSTER_H_
#define PPA_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "runtime/node_pool.h"
#include "topology/topology.h"

namespace ppa {

/// Per-job placement constraints layered over the shared node pool by the
/// multi-tenant ClusterService (src/service). A default-constructed value
/// imposes nothing, which keeps standalone single-job placement untouched.
struct PlacementConstraints {
  /// Maximum replicas this job may have placed at once (-1 = unlimited).
  /// Enforced at PlaceReplicaAuto/PlaceReplicas time: placing a *new*
  /// replica past the ceiling returns ResourceExhausted (re-placing a
  /// task that already has one never counts twice).
  int replica_ceiling = -1;
  /// If non-empty, replicas may only land on these standby nodes
  /// (affinity). Checked before anti-affinity.
  std::vector<int> replica_affinity;
  /// Replicas never land on these nodes (anti-affinity).
  std::vector<int> replica_anti_affinity;
  /// Spread this job's replicas across failure domains: within each
  /// candidate class, prefer the domain currently hosting the fewest of
  /// *this job's* replicas before comparing global load.
  bool spread_replicas_across_domains = false;
};

/// The simulated cluster (Sec. V-A / VI): worker nodes host primary task
/// copies; standby nodes store checkpoints and run active replicas.
/// Node ids are dense: [0, num_workers) are workers,
/// [num_workers, num_workers + num_standbys) are standby nodes.
///
/// Node-level state (liveness, domains, global load) lives in a NodePool.
/// A Cluster constructed from worker/standby counts owns a private pool —
/// the classic single-job setup. A Cluster constructed from an existing
/// pool is one tenant's *view* of a shared cluster: per-task placement is
/// private to the view, while failures and load are shared with every
/// other view of the same pool.
class Cluster {
 public:
  Cluster(int num_workers, int num_standbys);
  /// A tenant view over a shared pool (multi-tenant service).
  explicit Cluster(std::shared_ptr<NodePool> pool);

  int num_workers() const { return pool_->num_workers(); }
  int num_standbys() const { return pool_->num_standbys(); }
  int num_nodes() const { return pool_->num_nodes(); }

  /// The shared node pool backing this cluster view.
  const NodePool& pool() const { return *pool_; }
  std::shared_ptr<NodePool> shared_pool() const { return pool_; }

  /// True iff `node` is a standby node (hosts checkpoints/replicas).
  [[nodiscard]] bool IsStandby(int node) const { return pool_->IsStandby(node); }
  /// True iff `node` has not failed (or has been revived).
  [[nodiscard]] bool NodeAlive(int node) const { return pool_->NodeAlive(node); }
  void FailNode(int node);
  void ReviveNode(int node);

  /// Failure domains model the correlated-failure root causes of Sec. I
  /// (shared switches, racks, power): nodes in one domain fail together.
  /// By default every node is its own domain.
  Status AssignDomain(int node, int domain);
  int DomainOf(int node) const;
  /// All nodes currently assigned to `domain`.
  std::vector<int> NodesInDomain(int domain) const;

  /// Replaces this view's placement constraints (service placement
  /// policy). Applies to future placements only.
  void SetConstraints(PlacementConstraints constraints);
  const PlacementConstraints& constraints() const { return constraints_; }

  /// Replicas this view currently has placed (the count the ceiling is
  /// enforced against).
  [[nodiscard]] int PlacedReplicas() const { return placed_replicas_; }

  /// Places every task of `topology` on worker nodes round-robin.
  void PlacePrimariesRoundRobin(const Topology& topology);

  /// Pins one primary to a specific worker node (call before or after the
  /// round-robin placement to override it).
  Status PlacePrimary(TaskId task, int node);

  /// Places replicas of `tasks` on standby nodes round-robin.
  Status PlaceReplicas(const std::vector<TaskId>& tasks);

  /// Places one replica on the alive standby node currently hosting the
  /// fewest replicas (globally, across every view of the pool), preferring
  /// nodes outside the primary's failure domain so a domain failure cannot
  /// take out both copies. Honors this view's constraints (ceiling,
  /// affinity/anti-affinity, domain spreading).
  ///
  /// Determinism contract (the cross-tenant recovery arbiter depends on
  /// it): candidates are scanned in ascending node id and a candidate
  /// only replaces the incumbent when *strictly* better, so equal-load
  /// ties always break toward the lowest node id. Pinned by
  /// ServiceTest.PlaceReplicaAutoBreaksTiesByLowestNodeId.
  Status PlaceReplicaAuto(TaskId task);

  /// Releases the standby slot of `task`'s replica (no-op if none).
  void RemoveReplica(TaskId task);

  /// Active-replica takeover (Sec. V-B): the replica node becomes the
  /// task's primary node and the replica slot is released, so the pool's
  /// load counters and this view's placed-replica count follow the
  /// promotion instead of leaking the consumed slot.
  /// FailedPrecondition when the task has no replica placement.
  Status PromoteReplicaToPrimary(TaskId task);

  /// Releases every placement of this view and returns the load it
  /// contributed to the pool (tenant eviction).
  void ReleaseAllPlacements();

  /// Worker node hosting the primary of `task`; -1 if unplaced.
  int NodeOfPrimary(TaskId task) const;
  /// Standby node hosting the replica of `task`; -1 if none.
  int NodeOfReplica(TaskId task) const;

  /// Primaries placed on `node` (this view only).
  std::vector<TaskId> PrimariesOn(int node) const;
  /// Replicas placed on `node` (this view only).
  std::vector<TaskId> ReplicasOn(int node) const;

  /// Worker nodes that host at least one primary (this view only).
  std::vector<int> NodesHostingPrimaries() const;

  /// Publishes "cluster.node_failures" and "cluster.replica_placements"
  /// to `registry` (nullptr detaches).
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  void EnsureTask(TaskId task);
  /// Moves the primary of `task` to `node` (-1 = unplaced), keeping the
  /// pool's global primary-load accounting exact.
  void SetPrimaryNode(TaskId task, int node);
  /// Same for the replica, also maintaining placed_replicas_.
  void SetReplicaNode(TaskId task, int node);
  /// True when the constraints rule `node` out as a replica host.
  [[nodiscard]] bool ReplicaNodeExcluded(int node) const;
  /// Replicas of this view currently placed in `domain`.
  [[nodiscard]] int64_t ViewReplicasInDomain(int domain) const;

  std::shared_ptr<NodePool> pool_;
  PlacementConstraints constraints_;
  int placed_replicas_ = 0;
  std::vector<int> primary_node_;  // task -> node (-1 unplaced)
  std::vector<int> replica_node_;  // task -> node (-1 none)
  obs::Counter* node_failures_counter_ = nullptr;
  obs::Counter* replica_placements_counter_ = nullptr;
};

}  // namespace ppa

#endif  // PPA_RUNTIME_CLUSTER_H_
