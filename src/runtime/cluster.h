#ifndef PPA_RUNTIME_CLUSTER_H_
#define PPA_RUNTIME_CLUSTER_H_

#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "topology/topology.h"

namespace ppa {

/// The simulated cluster (Sec. V-A / VI): worker nodes host primary task
/// copies; standby nodes store checkpoints and run active replicas.
/// Node ids are dense: [0, num_workers) are workers,
/// [num_workers, num_workers + num_standbys) are standby nodes.
class Cluster {
 public:
  Cluster(int num_workers, int num_standbys);

  int num_workers() const { return num_workers_; }
  int num_standbys() const { return num_standbys_; }
  int num_nodes() const { return num_workers_ + num_standbys_; }

  /// True iff `node` is a standby node (hosts checkpoints/replicas).
  [[nodiscard]] bool IsStandby(int node) const { return node >= num_workers_; }
  /// True iff `node` has not failed (or has been revived).
  [[nodiscard]] bool NodeAlive(int node) const;
  void FailNode(int node);
  void ReviveNode(int node);

  /// Failure domains model the correlated-failure root causes of Sec. I
  /// (shared switches, racks, power): nodes in one domain fail together.
  /// By default every node is its own domain.
  Status AssignDomain(int node, int domain);
  int DomainOf(int node) const;
  /// All nodes currently assigned to `domain`.
  std::vector<int> NodesInDomain(int domain) const;

  /// Places every task of `topology` on worker nodes round-robin.
  void PlacePrimariesRoundRobin(const Topology& topology);

  /// Pins one primary to a specific worker node (call before or after the
  /// round-robin placement to override it).
  Status PlacePrimary(TaskId task, int node);

  /// Places replicas of `tasks` on standby nodes round-robin.
  Status PlaceReplicas(const std::vector<TaskId>& tasks);

  /// Places one replica on the alive standby node currently hosting the
  /// fewest replicas, preferring nodes outside the primary's failure
  /// domain so a domain failure cannot take out both copies.
  Status PlaceReplicaAuto(TaskId task);

  /// Releases the standby slot of `task`'s replica (no-op if none).
  void RemoveReplica(TaskId task);

  /// Worker node hosting the primary of `task`; -1 if unplaced.
  int NodeOfPrimary(TaskId task) const;
  /// Standby node hosting the replica of `task`; -1 if none.
  int NodeOfReplica(TaskId task) const;

  /// Primaries placed on `node`.
  std::vector<TaskId> PrimariesOn(int node) const;
  /// Replicas placed on `node`.
  std::vector<TaskId> ReplicasOn(int node) const;

  /// Worker nodes that host at least one primary.
  std::vector<int> NodesHostingPrimaries() const;

  /// Publishes "cluster.node_failures" and "cluster.replica_placements"
  /// to `registry` (nullptr detaches).
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  void EnsureTask(TaskId task);

  int num_workers_;
  int num_standbys_;
  std::vector<bool> node_alive_;
  std::vector<int> node_domain_;
  std::vector<int> primary_node_;  // task -> node (-1 unplaced)
  std::vector<int> replica_node_;  // task -> node (-1 none)
  obs::Counter* node_failures_counter_ = nullptr;
  obs::Counter* replica_placements_counter_ = nullptr;
};

}  // namespace ppa

#endif  // PPA_RUNTIME_CLUSTER_H_
