#include "runtime/config.h"

namespace ppa {

Status JobConfig::Validate() const {
  if (batch_interval <= Duration::Zero()) {
    return InvalidArgument("batch_interval must be positive");
  }
  if (detection_interval <= Duration::Zero()) {
    return InvalidArgument("detection_interval must be positive");
  }
  if (checkpoint_interval <= Duration::Zero()) {
    return InvalidArgument("checkpoint_interval must be positive");
  }
  if (replica_sync_interval <= Duration::Zero()) {
    return InvalidArgument("replica_sync_interval must be positive");
  }
  if (process_cost_per_tuple_us < 0.0) {
    return InvalidArgument("process_cost_per_tuple_us must be non-negative");
  }
  if (checkpoint_cost_per_state_tuple_us < 0.0) {
    return InvalidArgument(
        "checkpoint_cost_per_state_tuple_us must be non-negative");
  }
  if (checkpoint_fixed_cost_us < 0.0) {
    return InvalidArgument("checkpoint_fixed_cost_us must be non-negative");
  }
  if (num_worker_nodes <= 0) {
    return InvalidArgument("num_worker_nodes must be positive");
  }
  if (num_standby_nodes < 0) {
    return InvalidArgument("num_standby_nodes must be non-negative");
  }
  if (window_batches <= 0) {
    return InvalidArgument("window_batches must be positive");
  }
  if (max_delta_chain < 1) {
    return InvalidArgument("max_delta_chain must be at least 1");
  }
  if (flight_recorder_capacity < 0) {
    return InvalidArgument("flight_recorder_capacity must be non-negative");
  }
  if (recovery_mode == af::RecoveryMode::kApprox &&
      ft_mode != FtMode::kCheckpoint && ft_mode != FtMode::kPpa) {
    return InvalidArgument(
        "recovery_mode=approx requires a checkpoint-bearing ft_mode "
        "(checkpoint or ppa)");
  }
  if (recovery_mode == af::RecoveryMode::kHybrid && ft_mode != FtMode::kPpa) {
    return InvalidArgument("recovery_mode=hybrid requires ft_mode=ppa");
  }
  if (recovery_mode != af::RecoveryMode::kPpa) {
    PPA_RETURN_IF_ERROR(error_budget.Validate());
  }
  return OkStatus();
}

JobConfig JobConfig::CheckpointDefaults() {
  JobConfig config;
  config.ft_mode = FtMode::kCheckpoint;
  config.batch_interval = Duration::Seconds(1);
  config.detection_interval = Duration::Seconds(5);
  config.num_worker_nodes = 19;
  config.num_standby_nodes = 15;
  config.recovery.replay_rate_tuples_per_sec = 4000.0;
  config.recovery.state_load_rate_tuples_per_sec = 50000.0;
  config.recovery.task_restart_delay = Duration::Seconds(1.0);
  config.recovery.replica_activation_delay = Duration::Millis(200);
  config.recovery.sync_handshake_delay = Duration::Millis(250);
  config.recovery.replica_resend_rate_tuples_per_sec = 10000.0;
  config.process_cost_per_tuple_us = 2.0;
  config.checkpoint_cost_per_state_tuple_us = 0.04;
  config.checkpoint_fixed_cost_us = 500.0;
  return config;
}

JobConfig JobConfig::PpaDefaults() {
  JobConfig config = CheckpointDefaults();
  config.ft_mode = FtMode::kPpa;
  return config;
}

}  // namespace ppa
