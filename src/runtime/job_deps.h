#ifndef PPA_RUNTIME_JOB_DEPS_H_
#define PPA_RUNTIME_JOB_DEPS_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "backend/execution_backend.h"
#include "runtime/node_pool.h"

namespace ppa {

/// Sentinel strand value: the job mints a private strand from the
/// backend at construction.
inline constexpr uint64_t kAutoStrand = ~0ull;

/// Everything a StreamingJob needs from its environment, bundled so the
/// constructor stays backend-neutral (DESIGN.md §16). The referenced
/// backend (and pool, when shared) must outlive the job.
struct JobRuntimeDeps {
  /// Runs the job's timers and callbacks. Required.
  backend::ExecutionBackend* backend = nullptr;

  /// The node pool the job schedules onto. Null means "private cluster":
  /// the job builds its own pool from the config's cluster-shape fields.
  /// A shared pool (multi-tenant ClusterService) makes node liveness,
  /// domains, and load common to every job constructed over it.
  std::shared_ptr<NodePool> pool;

  /// The backend strand the job's events run on. One job must stay on
  /// one strand — that serialization is what keeps the threaded backend
  /// byte-identical to the sim oracle. kAutoStrand mints a fresh strand;
  /// the multi-tenant service instead puts all tenants of one shared
  /// pool on a single strand so their interleaving matches the sim.
  uint64_t strand = kAutoStrand;

  /// Whether Start() attaches the job's metrics registry and span
  /// profiler to the backend (the sim then publishes loop counters and
  /// brackets drives in sim-run root spans). On by default; a job
  /// sharing its backend with others may opt out to keep another job's
  /// registry attached.
  bool attach_backend_observability = true;

  JobRuntimeDeps() = default;
  /// Private cluster on a fresh strand — the common single-job spelling.
  explicit JobRuntimeDeps(backend::ExecutionBackend* b) : backend(b) {}
  /// Shared-pool tenant on a fresh strand.
  JobRuntimeDeps(backend::ExecutionBackend* b, std::shared_ptr<NodePool> p)
      : backend(b), pool(std::move(p)) {}
  /// Shared-pool tenant pinned to an explicit strand (ClusterService).
  JobRuntimeDeps(backend::ExecutionBackend* b, std::shared_ptr<NodePool> p,
                 uint64_t s)
      : backend(b), pool(std::move(p)), strand(s) {}
};

}  // namespace ppa

#endif  // PPA_RUNTIME_JOB_DEPS_H_
