#include "runtime/streaming_job.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "fidelity/metrics.h"

namespace ppa {

std::string_view FtModeToString(FtMode mode) {
  switch (mode) {
    case FtMode::kNone:
      return "none";
    case FtMode::kCheckpoint:
      return "checkpoint";
    case FtMode::kSourceReplay:
      return "source-replay";
    case FtMode::kActiveReplication:
      return "active";
    case FtMode::kPpa:
      return "ppa";
  }
  return "?";
}

Duration RecoveryReport::ActiveLatency() const {
  Duration max = Duration::Zero();
  for (const TaskRecoverySpec& spec : specs) {
    if (spec.kind == RecoveryKind::kActiveReplica) {
      auto it = schedule.completion.find(spec.task);
      if (it != schedule.completion.end()) {
        max = std::max(max, it->second);
      }
    }
  }
  return max;
}

Duration RecoveryReport::PassiveLatency() const {
  Duration max = Duration::Zero();
  for (const TaskRecoverySpec& spec : specs) {
    if (spec.kind != RecoveryKind::kActiveReplica) {
      auto it = schedule.completion.find(spec.task);
      if (it != schedule.completion.end()) {
        max = std::max(max, it->second);
      }
    }
  }
  return max;
}

StreamingJob::StreamingJob(Topology topology, JobConfig config,
                           JobRuntimeDeps deps)
    : topology_(std::move(topology)),
      config_(config),
      backend_(deps.backend),
      strand_(deps.strand == kAutoStrand ? deps.backend->NewStrand()
                                         : deps.strand),
      attach_backend_observability_(deps.attach_backend_observability),
      router_(&topology_),
      cluster_(deps.pool != nullptr
                   ? std::move(deps.pool)
                   : std::make_shared<NodePool>(config.num_worker_nodes,
                                                config.num_standby_nodes)),
      active_set_(topology_.num_tasks()),
      flight_(config.flight_recorder_capacity > 0
                  ? static_cast<size_t>(config.flight_recorder_capacity)
                  : 0) {
  // A shared pool defines the real cluster shape; keep the config's view
  // of it consistent (Start() checks num_standby_nodes, for example).
  config_.num_worker_nodes = cluster_.num_workers();
  config_.num_standby_nodes = cluster_.num_standbys();
  PPA_CHECK_OK(config_.Validate());
  if (config_.ft_mode == FtMode::kPpa) {
    config_.tentative_outputs = true;
  }
  op_factories_.resize(static_cast<size_t>(topology_.num_operators()));
  source_factories_.resize(static_cast<size_t>(topology_.num_operators()));
  processing_us_.assign(static_cast<size_t>(topology_.num_tasks()), 0.0);
  sink_recorded_until_.assign(static_cast<size_t>(topology_.num_tasks()),
                              -1);
  checkpoint_us_.assign(static_cast<size_t>(topology_.num_tasks()), 0.0);
  checkpoint_count_.assign(static_cast<size_t>(topology_.num_tasks()), 0);
  InitObservability();
}

void StreamingJob::InitObservability() {
  trace_.set_enabled(config_.observability);
  // The flight recorder mirrors the trace *before* the observability
  // gate: the bounded post-mortem ring keeps recording even when the
  // full trace is off.
  if (flight_.enabled()) {
    trace_.set_mirror(&flight_.ring());
  }
  spans_.set_enabled(config_.observability);
  fidelity_.set_enabled(config_.observability);
  m_sink_task_latency_stable_.assign(
      static_cast<size_t>(topology_.num_tasks()), nullptr);
  m_sink_task_latency_tentative_.assign(
      static_cast<size_t>(topology_.num_tasks()), nullptr);
  if (!config_.observability) {
    return;
  }
  m_batch_ticks_ = metrics_.counter("job.batch_ticks");
  m_tuples_primary_ = metrics_.counter("engine.tuples_processed");
  m_batches_primary_ = metrics_.counter("engine.batches_processed");
  m_tuples_replica_ = metrics_.counter("engine.replica_tuples_processed");
  m_batches_replica_ = metrics_.counter("engine.replica_batches_processed");
  m_node_failures_ = metrics_.counter("job.node_failures");
  m_task_failures_ = metrics_.counter("job.task_failures");
  m_recoveries_active_ = metrics_.counter("recovery.active_started");
  m_recoveries_passive_ = metrics_.counter("recovery.passive_started");
  m_replica_activations_ = metrics_.counter("job.replica_activations");
  m_replica_deactivations_ = metrics_.counter("job.replica_deactivations");
  m_sink_records_ = metrics_.counter("sink.records");
  m_sink_tentative_ = metrics_.counter("sink.tentative_records");
  m_sink_corrections_ = metrics_.counter("sink.correction_records");
  if (config_.recovery_mode != af::RecoveryMode::kPpa) {
    m_af_skipped_ = metrics_.counter("af.checkpoints_skipped");
    m_af_forfeited_records_ = metrics_.counter("af.forfeited_records");
    m_af_certified_loss_ = metrics_.histogram("af.certified_loss");
  }
  m_buffered_tuples_ = metrics_.gauge("job.buffered_tuples");
  m_output_buffer_batches_ = metrics_.gauge("engine.output_buffer_batches");
  m_buffered_bytes_estimate_ =
      metrics_.gauge("engine.buffered_bytes_estimate");
  m_router_max_fanout_ = metrics_.gauge("router.max_fanout");
  m_checkpoint_bytes_total_ = metrics_.gauge("checkpoint.store_bytes");
  m_checkpoint_duration_us_ = metrics_.histogram("checkpoint.duration_us");
  m_checkpoint_state_tuples_ = metrics_.histogram("checkpoint.state_tuples");
  m_recovery_latency_s_ = metrics_.histogram("recovery.latency_s");
  m_recovery_active_latency_s_ =
      metrics_.histogram("recovery.active_latency_s");
  m_recovery_passive_latency_s_ =
      metrics_.histogram("recovery.passive_latency_s");
  m_tuples_per_batch_ = metrics_.histogram("engine.tuples_per_batch");
  m_sink_latency_stable_ = metrics_.histogram("sink.latency_stable_s");
  m_sink_latency_tentative_ = metrics_.histogram("sink.latency_tentative_s");
  m_sink_lineage_hops_ = metrics_.histogram("sink.lineage_hops");
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    if (!topology_.IsSinkTask(t)) {
      continue;
    }
    const std::string prefix = "sink.t" + std::to_string(t);
    m_sink_task_latency_stable_[static_cast<size_t>(t)] =
        metrics_.histogram(prefix + ".latency_stable_s");
    m_sink_task_latency_tentative_[static_cast<size_t>(t)] =
        metrics_.histogram(prefix + ".latency_tentative_s");
  }
  cluster_.AttachMetrics(&metrics_);
  checkpoints_.AttachMetrics(&metrics_);
  checkpoints_.AttachSpans(&spans_);
  // Static routing-fanout profile: consumer-set size of every
  // (producer task, downstream operator) edge. Fixed by the topology, so
  // record it once here rather than per routed batch.
  obs::Histogram* edge_fanout = metrics_.histogram("router.edge_fanout");
  int64_t max_fanout = 0;
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    for (OperatorId to_op : topology_.op(topology_.task(t).op).downstream) {
      const int64_t fanout =
          static_cast<int64_t>(router_.Consumers(t, to_op).size());
      edge_fanout->Record(static_cast<double>(fanout));
      max_fanout = std::max(max_fanout, fanout);
    }
  }
  obs::Set(m_router_max_fanout_, static_cast<double>(max_fanout));
}

StreamingJob::~StreamingJob() = default;

Status StreamingJob::BindOperator(OperatorId op, OperatorFactory factory) {
  if (op < 0 || op >= topology_.num_operators()) {
    return InvalidArgument("BindOperator: bad operator id");
  }
  if (topology_.op(op).upstream.empty()) {
    return InvalidArgument("BindOperator: operator '" +
                           topology_.op(op).name +
                           "' is a source; use BindSource");
  }
  op_factories_[static_cast<size_t>(op)] = std::move(factory);
  return OkStatus();
}

Status StreamingJob::BindSource(OperatorId op, SourceFactory factory) {
  if (op < 0 || op >= topology_.num_operators()) {
    return InvalidArgument("BindSource: bad operator id");
  }
  if (!topology_.op(op).upstream.empty()) {
    return InvalidArgument("BindSource: operator '" + topology_.op(op).name +
                           "' is not a source");
  }
  source_factories_[static_cast<size_t>(op)] = std::move(factory);
  return OkStatus();
}

Status StreamingJob::SetActiveReplicaSet(const TaskSet& tasks) {
  if (started_) {
    return FailedPrecondition("SetActiveReplicaSet must precede Start");
  }
  if (tasks.universe_size() != topology_.num_tasks()) {
    return InvalidArgument("active set universe mismatch");
  }
  active_set_ = tasks;
  return OkStatus();
}

TaskRuntime* StreamingJob::replica(TaskId t) {
  auto it = replicas_.find(t);
  return it == replicas_.end() ? nullptr : it->second.get();
}

Status StreamingJob::Start() {
  if (started_) {
    return FailedPrecondition("job already started");
  }
  for (const OperatorInfo& oi : topology_.operators()) {
    const bool is_source = oi.upstream.empty();
    if (is_source && !source_factories_[static_cast<size_t>(oi.id)]) {
      return FailedPrecondition("source operator '" + oi.name + "' unbound");
    }
    if (!is_source && !op_factories_[static_cast<size_t>(oi.id)]) {
      return FailedPrecondition("operator '" + oi.name + "' unbound");
    }
  }
  if (config_.ft_mode == FtMode::kActiveReplication) {
    active_set_ = TaskSet::All(topology_.num_tasks());
  } else if (config_.ft_mode != FtMode::kPpa) {
    active_set_ = TaskSet(topology_.num_tasks());
  }
  if (!active_set_.empty() && config_.num_standby_nodes == 0) {
    return FailedPrecondition("active replicas require standby nodes");
  }

  primaries_.clear();
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    primaries_.push_back(MakeRuntime(t));
    primaries_.back()->AttachMetrics(m_tuples_primary_, m_batches_primary_);
    if (config_.observability) {
      primaries_.back()->AttachSpans(&spans_,
                                     config_.process_cost_per_tuple_us);
    }
  }
  for (TaskId t : active_set_.ToVector()) {
    replicas_[t] = MakeRuntime(t);
    replicas_[t]->AttachMetrics(m_tuples_replica_, m_batches_replica_);
  }

  // Placement: keep any pins made through cluster() before Start; fill the
  // rest round-robin.
  bool any_unplaced = false;
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    if (cluster_.NodeOfPrimary(t) < 0) {
      any_unplaced = true;
    }
  }
  if (any_unplaced) {
    for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
      if (cluster_.NodeOfPrimary(t) < 0) {
        PPA_RETURN_IF_ERROR(
            cluster_.PlacePrimary(t, t % cluster_.num_workers()));
      }
    }
  }
  for (TaskId t : active_set_.ToVector()) {
    PPA_RETURN_IF_ERROR(cluster_.PlaceReplicaAuto(t));
    trace_.Record(backend_->now(), obs::TraceEventKind::kReplicaActivated, t,
                  cluster_.NodeOfReplica(t));
    obs::Add(m_replica_activations_);
  }

  started_ = true;
  if (config_.observability && attach_backend_observability_) {
    backend_->AttachMetrics(&metrics_);
    backend_->AttachSpans(&spans_);
  }

  divergence_.Reset(topology_.num_tasks(), backend_->now());

  // Recurring engine events.
  ScheduleManaged(Duration::Zero(), [this] { OnBatchTick(); });
  if (config_.ft_mode == FtMode::kCheckpoint ||
      config_.ft_mode == FtMode::kPpa) {
    const int n = topology_.num_tasks();
    for (TaskId t = 0; t < n; ++t) {
      Duration offset = config_.checkpoint_interval;
      if (config_.stagger_checkpoints) {
        offset += Duration::Micros(config_.checkpoint_interval.micros() *
                                   (t + 1) / (n + 1)) -
                  config_.checkpoint_interval / 2;
      }
      ScheduleManaged(offset, [this, t] { OnCheckpoint(t); });
    }
  }
  if (!active_set_.empty() || config_.ft_mode == FtMode::kNone ||
      config_.ft_mode == FtMode::kActiveReplication) {
    ScheduleManaged(config_.replica_sync_interval,
                    [this] { OnReplicaSync(); });
  }
  ScheduleManaged(config_.detection_interval, [this] { OnDetection(); });
  observed_emitted_.assign(static_cast<size_t>(topology_.num_tasks()), 0);
  observed_processed_.assign(static_cast<size_t>(topology_.num_tasks()), 0);
  observed_at_ = backend_->now();
  if (adaptation_interval_ > Duration::Zero()) {
    ScheduleManaged(adaptation_interval_, [this] { OnAdaptation(); });
  }
  return OkStatus();
}

std::unique_ptr<TaskRuntime> StreamingJob::MakeRuntime(TaskId t) {
  const OperatorInfo& oi = topology_.op(topology_.task(t).op);
  if (oi.upstream.empty()) {
    return std::make_unique<TaskRuntime>(
        &topology_, t, nullptr,
        source_factories_[static_cast<size_t>(oi.id)]());
  }
  return std::make_unique<TaskRuntime>(
      &topology_, t, op_factories_[static_cast<size_t>(oi.id)](), nullptr);
}

Status StreamingJob::EnablePlanAdaptation(Duration interval,
                                          AdaptationPlanner planner) {
  if (started_) {
    return FailedPrecondition("EnablePlanAdaptation must precede Start");
  }
  if (config_.ft_mode != FtMode::kPpa) {
    return FailedPrecondition("plan adaptation requires FtMode::kPpa");
  }
  if (interval <= Duration::Zero() || planner == nullptr) {
    return InvalidArgument("bad adaptation interval or planner");
  }
  adaptation_interval_ = interval;
  adaptation_planner_ = std::move(planner);
  return OkStatus();
}

StatusOr<Topology> StreamingJob::ObservedTopology() {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  const double window = (backend_->now() - observed_at_).seconds();
  TopologyBuilder builder;
  for (const OperatorInfo& oi : topology_.operators()) {
    // Observed selectivity: output tuples per processed input tuple over
    // the window, falling back to the static value with no data.
    double selectivity = oi.selectivity;
    if (!oi.upstream.empty() && window > 0) {
      int64_t emitted = 0;
      int64_t processed = 0;
      for (TaskId t : oi.tasks) {
        emitted += primaries_[static_cast<size_t>(t)]->emitted_tuples() -
                   observed_emitted_[static_cast<size_t>(t)];
        processed += primaries_[static_cast<size_t>(t)]->processed_tuples() -
                     observed_processed_[static_cast<size_t>(t)];
      }
      if (processed > 0) {
        selectivity = static_cast<double>(emitted) /
                      static_cast<double>(processed);
      }
    }
    builder.AddOperator(oi.name, oi.parallelism, oi.correlation, selectivity);
    for (int k = 0; k < oi.parallelism; ++k) {
      const TaskId t = oi.tasks[static_cast<size_t>(k)];
      double weight = topology_.task(t).weight;
      if (window > 0) {
        const double rate =
            static_cast<double>(
                primaries_[static_cast<size_t>(t)]->emitted_tuples() -
                observed_emitted_[static_cast<size_t>(t)]) /
            window;
        weight = std::max(rate, 1e-9);
      }
      builder.SetTaskWeight(oi.id, k, weight);
    }
  }
  for (const StreamEdge& e : topology_.edges()) {
    builder.Connect(e.from, e.to, e.scheme);
  }
  for (OperatorId src : topology_.source_operators()) {
    double total = 0.0;
    if (window > 0) {
      for (TaskId t : topology_.op(src).tasks) {
        total += static_cast<double>(
                     primaries_[static_cast<size_t>(t)]->emitted_tuples() -
                     observed_emitted_[static_cast<size_t>(t)]) /
                 window;
      }
    } else {
      for (TaskId t : topology_.op(src).tasks) {
        total += topology_.task(t).output_rate;
      }
    }
    builder.SetSourceRate(src, std::max(total, 1e-9));
  }
  // Advance the observation point.
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    observed_emitted_[static_cast<size_t>(t)] =
        primaries_[static_cast<size_t>(t)]->emitted_tuples();
    observed_processed_[static_cast<size_t>(t)] =
        primaries_[static_cast<size_t>(t)]->processed_tuples();
  }
  observed_at_ = backend_->now();
  return builder.Build();
}

Status StreamingJob::ActivateReplica(TaskId t) {
  std::unique_ptr<TaskRuntime> rep = MakeRuntime(t);
  const std::vector<TaskCheckpoint>* chain = checkpoints_.Chain(t);
  if (chain != nullptr) {
    // "Send the corresponding checkpoint to the destination node and
    // initialize the replica's state with it" (Sec. V-C); the replica then
    // catches up from the upstream output buffers, which the checkpoint
    // trimming protocol guarantees still cover everything past the chain.
    // The chain's base is a full snapshot; later elements are deltas.
    PPA_RETURN_IF_ERROR(rep->Restore((*chain)[0].blob));
    for (size_t i = 1; i < chain->size(); ++i) {
      PPA_RETURN_IF_ERROR(rep->ApplyDelta((*chain)[i].blob));
    }
  } else {
    // No checkpoint yet: direct state transfer from the primary.
    PPA_ASSIGN_OR_RETURN(std::string blob,
                         primaries_[static_cast<size_t>(t)]->Snapshot());
    PPA_RETURN_IF_ERROR(rep->Restore(blob));
  }
  // A previously-thinned task's upstream buffers only cover batches past
  // the certified skip frontier; seed the replica there (no-op for exact
  // tasks, where TrimBatch never exceeds the restored coverage).
  if (checkpoints_.TrimBatch(t) > rep->next_batch()) {
    rep->FastForward(checkpoints_.TrimBatch(t));
  }
  PPA_RETURN_IF_ERROR(cluster_.PlaceReplicaAuto(t));
  rep->AttachMetrics(m_tuples_replica_, m_batches_replica_);
  replicas_[t] = std::move(rep);
  trace_.Record(backend_->now(), obs::TraceEventKind::kReplicaActivated, t,
                cluster_.NodeOfReplica(t));
  obs::Add(m_replica_activations_);
  return OkStatus();
}

Status StreamingJob::ApplyActiveReplicaSet(const TaskSet& tasks) {
  if (!started_) {
    return FailedPrecondition("job not started; use SetActiveReplicaSet");
  }
  if (config_.ft_mode != FtMode::kPpa) {
    return FailedPrecondition("dynamic replica changes require FtMode::kPpa");
  }
  if (tasks.universe_size() != topology_.num_tasks()) {
    return InvalidArgument("active set universe mismatch");
  }
  // Deactivate replicas leaving the plan (never while their primary is
  // failed or recovering: the replica may be the recovery path).
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    const TaskId t = it->first;
    const bool busy = recovering_.count(t) > 0 ||
                      !primaries_[static_cast<size_t>(t)]->alive();
    if (!tasks.Contains(t) && !busy) {
      cluster_.RemoveReplica(t);
      active_set_.Remove(t);
      trace_.Record(backend_->now(), obs::TraceEventKind::kReplicaDeactivated, t);
      obs::Add(m_replica_deactivations_);
      it = replicas_.erase(it);
    } else {
      ++it;
    }
  }
  // Activate replicas entering the plan.
  for (TaskId t : tasks.ToVector()) {
    if (replicas_.count(t) > 0 || recovering_.count(t) > 0 ||
        !primaries_[static_cast<size_t>(t)]->alive()) {
      continue;
    }
    PPA_RETURN_IF_ERROR(ActivateReplica(t));
    active_set_.Add(t);
  }
  Advance();  // New replicas catch up from the buffered outputs.
  return OkStatus();
}

void StreamingJob::OnAdaptation() {
  auto observed = ObservedTopology();
  if (observed.ok()) {
    spans_.Begin(backend_->now(), obs::SpanCategory::kPlannerRun);
    auto plan = adaptation_planner_(*observed);
    spans_.End(backend_->now());
    if (plan.ok()) {
      Status applied = ApplyActiveReplicaSet(*plan);
      if (!applied.ok()) {
        PPA_LOG(Warning) << "plan adaptation skipped: "
                         << applied.ToString();
      }
    } else {
      PPA_LOG(Warning) << "adaptation planner failed: "
                       << plan.status().ToString();
    }
  }
  ScheduleManaged(adaptation_interval_, [this] { OnAdaptation(); });
}

void StreamingJob::OnBatchTick() {
  if (frontier_ < 0) {
    // Anchor of the latency lineage: batch b's tuples enter the system
    // at first_tick_at_ + b * batch_interval.
    first_tick_at_ = backend_->now();
  }
  ++frontier_;
  Advance();
  const int64_t buffered = CurrentBufferedTuples();
  peak_buffered_tuples_ = std::max(peak_buffered_tuples_, buffered);
  obs::Add(m_batch_ticks_);
  obs::Set(m_buffered_tuples_, static_cast<double>(buffered));
  if (m_output_buffer_batches_ != nullptr) {
    int64_t batches = 0;
    for (const auto& rt : primaries_) {
      batches += static_cast<int64_t>(rt->output_buffer().size());
    }
    obs::Set(m_output_buffer_batches_, static_cast<double>(batches));
    // Floor estimate of replay-buffer memory: tuples and batch headers at
    // their in-memory struct size (keys are small ints here, so payload
    // bytes are the structs themselves).
    obs::Set(m_buffered_bytes_estimate_,
             static_cast<double>(
                 buffered * static_cast<int64_t>(sizeof(Tuple)) +
                 batches * static_cast<int64_t>(sizeof(BatchOutput))));
  }
  NoteCaughtUpTasks();
  ScheduleManaged(config_.batch_interval, [this] { OnBatchTick(); });
}

void StreamingJob::NoteCaughtUpTasks() {
  for (auto it = catching_up_.begin(); it != catching_up_.end();) {
    const TaskId t = *it;
    TaskRuntime* rt = primaries_[static_cast<size_t>(t)].get();
    if (rt->alive() && rt->next_batch() > frontier_) {
      trace_.Record(backend_->now(), obs::TraceEventKind::kTaskCaughtUp, t, -1,
                    frontier_);
      it = catching_up_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t StreamingJob::CurrentBufferedTuples() const {
  int64_t total = 0;
  for (const auto& rt : primaries_) {
    total += rt->BufferedTuples();
  }
  return total;
}

void StreamingJob::Advance() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (OperatorId op : topology_.topo_order()) {
      for (TaskId t : topology_.op(op).tasks) {
        progress |= TryAdvance(primaries_[static_cast<size_t>(t)].get(),
                               /*is_replica=*/false);
        auto rep = replicas_.find(t);
        if (rep != replicas_.end()) {
          progress |= TryAdvance(rep->second.get(), /*is_replica=*/true);
        }
      }
    }
  }
}

bool StreamingJob::CanProcess(TaskId t, int64_t b) const {
  for (int si : topology_.task(t).in_substreams) {
    const Substream& s = topology_.substreams()[si];
    const TaskRuntime* up = primaries_[static_cast<size_t>(s.from)].get();
    if (up->FindBatch(b) != nullptr) {
      continue;  // Data present.
    }
    if (up->alive() && up->next_batch() > b) {
      continue;  // Produced in the past but no longer buffered (trimmed or
                 // skipped by recovery): resolved, possibly degraded.
    }
    if (!up->alive() && punctured_tasks_.count(s.from) > 0) {
      continue;  // Master-injected batch-over punctuation (Sec. V-B).
    }
    return false;
  }
  return true;
}

std::vector<Tuple> StreamingJob::GatherInputs(TaskId t, int64_t b,
                                              bool* punctured,
                                              BatchRunContext* ctx) {
  std::vector<Tuple> inputs;
  const OperatorId to_op = topology_.task(t).op;
  for (int si : topology_.task(t).in_substreams) {
    const Substream& s = topology_.substreams()[si];
    const TaskRuntime* up = primaries_[static_cast<size_t>(s.from)].get();
    const BatchOutput* bo = up->FindBatch(b);
    if (bo == nullptr) {
      if (!up->alive() || up->ever_failed()) {
        *punctured = true;
      }
      continue;
    }
    if (ctx != nullptr) {
      ctx->ingest_at = std::min(ctx->ingest_at, bo->ingest_at);
      ctx->hops = std::max(ctx->hops, bo->hops + 1);
    }
    router_.RouteBatchTo(s.from, to_op, *bo, t, &inputs);
  }
  return inputs;
}

bool StreamingJob::TryAdvance(TaskRuntime* rt, bool is_replica) {
  if (rt == nullptr || !rt->alive()) {
    return false;
  }
  const TaskId t = rt->id();
  bool advanced = false;
  while (rt->next_batch() <= frontier_) {
    const int64_t b = rt->next_batch();
    if (!rt->is_source() && !CanProcess(t, b)) {
      break;
    }
    bool punctured = false;
    BatchRunContext ctx;
    ctx.now = backend_->now();
    // Sources (and punctuation-fed batches, which gather no upstream
    // lineage) stamp the batch's nominal tick time.
    ctx.ingest_at = BatchTickTime(b);
    ctx.replay = !is_replica && catching_up_.count(t) > 0;
    std::vector<Tuple> inputs;
    if (!rt->is_source()) {
      inputs = GatherInputs(t, b, &punctured, &ctx);
    }
    const size_t in_count = inputs.size();
    const BatchOutput& out = rt->RunBatch(b, std::move(inputs), true, ctx);
    if (!is_replica) {
      const double work =
          rt->is_source() ? static_cast<double>(out.tuples.size())
                          : static_cast<double>(in_count);
      processing_us_[static_cast<size_t>(t)] +=
          work * config_.process_cost_per_tuple_us;
      if (config_.recovery_mode != af::RecoveryMode::kPpa) {
        // Conservative un-persisted drift: every record processed since
        // the task's last persisted blob could be forfeited by a thinned
        // recovery (DESIGN.md §17). Cleared when a blob lands.
        const int64_t records = static_cast<int64_t>(work);
        divergence_.Observe(t, records,
                            records * static_cast<int64_t>(sizeof(Tuple)),
                            topology_.task(t).weight);
      }
      if (!rt->is_source()) {
        obs::Observe(m_tuples_per_batch_, static_cast<double>(in_count));
      }
      if (punctured) {
        degraded_batches_.insert(b);
      }
      if (topology_.IsSinkTask(t)) {
        // Batches replayed by a recovered sink were already delivered to
        // the user before the failure; suppress the duplicates.
        if (b > sink_recorded_until_[static_cast<size_t>(t)]) {
          const bool tentative =
              punctured || degraded_batches_.count(b) > 0;
          for (const Tuple& tuple : out.tuples) {
            sink_records_.push_back(SinkRecord{
                tuple, tentative, backend_->now(), false, out.ingest_at});
          }
          sink_recorded_until_[static_cast<size_t>(t)] = b;
          RecordSinkBatch(t, b, static_cast<int64_t>(out.tuples.size()),
                          tentative, out.ingest_at, out.hops);
        }
        // Sinks have no subscribers; their buffer is not needed for
        // replay.
        rt->TrimOutputBuffer(b);
      }
    }
    advanced = true;
  }
  return advanced;
}

void StreamingJob::RecordSinkBatch(TaskId t, int64_t batch, int64_t tuples,
                                   bool tentative, TimePoint ingest_at,
                                   int32_t hops) {
  obs::Add(m_sink_records_, tuples);
  if (tentative) {
    obs::Add(m_sink_tentative_, tuples);
  }
  const double latency_s = (backend_->now() - ingest_at).seconds();
  obs::Observe(tentative ? m_sink_latency_tentative_ : m_sink_latency_stable_,
               latency_s);
  obs::Observe(tentative
                   ? m_sink_task_latency_tentative_[static_cast<size_t>(t)]
                   : m_sink_task_latency_stable_[static_cast<size_t>(t)],
               latency_s);
  obs::Observe(m_sink_lineage_hops_, static_cast<double>(hops));
  trace_.Record(backend_->now(),
                tentative ? obs::TraceEventKind::kSinkBatchTentative
                          : obs::TraceEventKind::kSinkBatchStable,
                t, -1, batch, tuples);
  const bool was_open = tentative_window_open_;
  if (tentative && !tentative_window_open_) {
    trace_.Record(backend_->now(), obs::TraceEventKind::kTentativeWindowBegin,
                  -1, -1, batch);
    tentative_window_open_ = true;
    tentative_window_last_batch_ = batch;
  } else if (tentative) {
    tentative_window_last_batch_ =
        std::max(tentative_window_last_batch_, batch);
  } else if (tentative_window_open_ && undetected_failures_.empty() &&
             recovering_.empty()) {
    // Stable emissions from unaffected sinks do not close the window
    // while a failure is still being recovered; the first stable batch
    // after full recovery does. The closing event carries the last
    // *tentative* batch, so [first_batch, last_batch] is the degraded
    // range even when the closing sink replays batches from before the
    // window opened.
    trace_.Record(backend_->now(), obs::TraceEventKind::kTentativeWindowEnd,
                  -1, -1, tentative_window_last_batch_);
    tentative_window_open_ = false;
  }
  // Live fidelity timeseries: one OF/IC sample per sink delivery while a
  // tentative window is open (or opening/closing), computed from the
  // currently-failed primaries. Stable steady-state batches are skipped:
  // there OF == IC == 1 by construction.
  if (fidelity_.enabled() && (tentative || was_open)) {
    TaskSet failed(topology_.num_tasks());
    int64_t num_failed = 0;
    for (TaskId u = 0; u < topology_.num_tasks(); ++u) {
      if (!primaries_[static_cast<size_t>(u)]->alive()) {
        failed.Add(u);
        ++num_failed;
      }
    }
    obs::FidelitySample sample;
    sample.at = backend_->now();
    sample.batch = batch;
    sample.sink_task = t;
    sample.tentative = tentative;
    sample.failed_tasks = num_failed;
    if (num_failed > 0) {
      sample.output_fidelity = ComputeOutputFidelity(topology_, failed);
      sample.internal_completeness =
          ComputeInternalCompleteness(topology_, failed);
    }
    fidelity_.Record(sample);
  }
}

bool StreamingJob::ApproxEligible(TaskId t) const {
  switch (config_.recovery_mode) {
    case af::RecoveryMode::kPpa:
      return false;
    case af::RecoveryMode::kApprox:
      return true;
    case af::RecoveryMode::kHybrid:
      // Hybrid placement rule (DESIGN.md §17): tasks under the active
      // replica plan (the planner's high-weight picks) stay exact; the
      // rest run under the bounded-error contract.
      return !active_set_.Contains(t) && replicas_.count(t) == 0;
  }
  return false;
}

bool StreamingJob::ShouldSkipCheckpoint(TaskId t, TaskRuntime* rt) const {
  if (!ApproxEligible(t)) {
    return false;
  }
  // Nothing new to certify since the frontier last moved: take the (now
  // cheap) checkpoint and reset the drift instead of chasing a frontier
  // that stalled.
  if (rt->next_batch() <= checkpoints_.TrimBatch(t)) {
    return false;
  }
  // Job-wide at-risk drift: every task already running ahead of its
  // persisted coverage, plus this one. A correlated failure could forfeit
  // all of them at once, so both the job budget and the certified-loss cap
  // are evaluated over the union.
  const af::Divergence& task_drift = divergence_.OfTask(t);
  af::Divergence job_drift = task_drift;
  TaskSet at_risk(topology_.num_tasks());
  at_risk.Add(t);
  for (TaskId u = 0; u < topology_.num_tasks(); ++u) {
    if (u != t && checkpoints_.TrimBatch(u) > checkpoints_.CoveredBatch(u)) {
      job_drift.Add(divergence_.OfTask(u));
      at_risk.Add(u);
    }
  }
  const af::ErrorBudget budget(config_.error_budget);
  if (!budget.AllowSkip(task_drift,
                        divergence_.ElapsedSeconds(t, backend_->now()),
                        job_drift)) {
    return false;
  }
  return af::CertifiedLossBound(topology_, at_risk) <=
         config_.error_budget.max_certified_loss;
}

void StreamingJob::OnCheckpoint(TaskId t) {
  TaskRuntime* rt = primaries_[static_cast<size_t>(t)].get();
  if (rt->alive() && ShouldSkipCheckpoint(t, rt)) {
    // Thinned checkpoint: certify coverage up to the live frontier
    // without persisting a blob. The snapshot baseline is untouched, so
    // the next persisted delta spans the gap; upstream buffers may trim
    // as if the checkpoint had been taken, making the skipped batches
    // unrecoverable-by-replay — exactly the drift the budget certified.
    ++checkpoints_skipped_;
    checkpoints_.NoteSkipped(t, rt->next_batch());
    trace_.Record(backend_->now(), obs::TraceEventKind::kCheckpointSkipped, t,
                  -1, rt->next_batch(), divergence_.OfTask(t).records);
    obs::Add(m_af_skipped_);
    TrimUpstreamBuffers(t);
  } else if (rt->alive()) {
    trace_.Record(backend_->now(), obs::TraceEventKind::kCheckpointBegin, t, -1,
                  rt->next_batch());
    TaskCheckpoint cp;
    cp.task = t;
    cp.next_batch = rt->next_batch();
    cp.taken_at = backend_->now();
    const bool take_delta =
        config_.delta_checkpoints && rt->SupportsDeltaSnapshots() &&
        checkpoints_.Chain(t) != nullptr &&
        checkpoints_.ChainDeltas(t) < config_.max_delta_chain &&
        checkpoint_rebase_.count(t) == 0;
    if (take_delta) {
      auto delta = rt->SnapshotDelta();
      PPA_CHECK_OK(delta.status());
      cp.state_tuples = delta->state_tuples;
      cp.blob = std::move(delta->blob);
    } else {
      auto blob = rt->Snapshot();
      PPA_CHECK_OK(blob.status());
      cp.state_tuples = rt->StateSizeTuples();
      cp.blob = *std::move(blob);
    }
    const int64_t blob_bytes = static_cast<int64_t>(cp.blob.size());
    const int64_t state_tuples = cp.state_tuples;
    const double cp_us =
        config_.checkpoint_fixed_cost_us +
        static_cast<double>(state_tuples) *
            config_.checkpoint_cost_per_state_tuple_us;
    const Duration cp_cost = Duration::Micros(static_cast<int64_t>(cp_us));
    if (take_delta) {
      PPA_CHECK_OK(checkpoints_.PutDelta(std::move(cp), cp_cost));
    } else {
      checkpoints_.Put(std::move(cp), cp_cost);
    }
    checkpoint_rebase_.erase(t);
    ++checkpoint_count_[static_cast<size_t>(t)];
    checkpoint_us_[static_cast<size_t>(t)] += cp_us;
    // The end event carries the modeled CPU completion time; no loop event
    // is scheduled for it (scheduling one would perturb event ids and break
    // bit-identity with observability off).
    trace_.Record(backend_->now() + cp_cost, obs::TraceEventKind::kCheckpointEnd,
                  t, -1, blob_bytes, static_cast<int64_t>(cp_us));
    obs::Observe(m_checkpoint_duration_us_, cp_us);
    obs::Observe(m_checkpoint_state_tuples_,
                 static_cast<double>(state_tuples));
    obs::Set(m_checkpoint_bytes_total_,
             static_cast<double>(checkpoints_.TotalBlobBytes()));
    checkpoint_bytes_written_ += blob_bytes;
    if (config_.recovery_mode != af::RecoveryMode::kPpa) {
      // The blob persists everything processed so far; the drift epoch
      // restarts here.
      divergence_.Clear(t, backend_->now());
    }
    TrimUpstreamBuffers(t);
  }
  ScheduleManaged(config_.checkpoint_interval,
                  [this, t] { OnCheckpoint(t); });
}

void StreamingJob::TrimUpstreamBuffers(TaskId checkpointed) {
  // Each upstream producer of the freshly checkpointed task may drop every
  // batch that all of its consumers' checkpoints already cover.
  for (int si : topology_.task(checkpointed).in_substreams) {
    const Substream& s = topology_.substreams()[si];
    const TaskId u = s.from;
    int64_t min_covered = INT64_MAX;
    for (int osi : topology_.task(u).out_substreams) {
      const Substream& os = topology_.substreams()[osi];
      // TrimBatch folds in the skip frontier of thinned consumers; it
      // equals CoveredBatch whenever the consumer never skipped.
      min_covered = std::min(min_covered, checkpoints_.TrimBatch(os.to));
      // Consumer replicas read from this buffer as well; keep what they
      // have not yet processed.
      auto rep = replicas_.find(os.to);
      if (rep != replicas_.end() && rep->second->alive()) {
        min_covered = std::min(min_covered, rep->second->next_batch());
      }
    }
    if (min_covered > 0 && min_covered != INT64_MAX) {
      primaries_[static_cast<size_t>(u)]->TrimOutputBuffer(min_covered - 1);
    }
  }
}

void StreamingJob::OnReplicaSync() {
  auto consumption_level = [&](TaskId t) {
    int64_t level = INT64_MAX;
    for (int osi : topology_.task(t).out_substreams) {
      const Substream& os = topology_.substreams()[osi];
      level = std::min(
          level, primaries_[static_cast<size_t>(os.to)]->next_batch());
      auto rep = replicas_.find(os.to);
      if (rep != replicas_.end() && rep->second->alive()) {
        level = std::min(level, rep->second->next_batch());
      }
    }
    return level == INT64_MAX ? frontier_ + 1 : level;
  };
  // Sink replicas keep enough recent batches to flush them to the user at
  // takeover (failure + detection can hide up to a detection interval of
  // output).
  const int64_t sink_retention =
      config_.detection_interval.micros() / config_.batch_interval.micros() +
      2;
  for (auto& [t, rep] : replicas_) {
    if (rep->alive()) {
      if (topology_.IsSinkTask(t)) {
        rep->TrimOutputBuffer(frontier_ - sink_retention);
      } else {
        rep->TrimOutputBuffer(consumption_level(t) - 1);
      }
    }
  }
  // Without checkpoint-driven trimming, primary buffers are trimmed by
  // downstream consumption instead.
  if (config_.ft_mode == FtMode::kActiveReplication ||
      config_.ft_mode == FtMode::kNone) {
    for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
      TaskRuntime* rt = primaries_[static_cast<size_t>(t)].get();
      if (rt->alive() && !topology_.IsSinkTask(t)) {
        rt->TrimOutputBuffer(consumption_level(t) - 1);
      }
    }
  }
  ScheduleManaged(config_.replica_sync_interval,
                  [this] { OnReplicaSync(); });
}

int64_t StreamingJob::EstimateReplayTuples(TaskId t, int64_t from_batch) const {
  const double batch_seconds = config_.batch_interval.seconds();
  const int64_t span = std::max<int64_t>(0, frontier_ + 1 - from_batch);
  if (topology_.IsSourceTask(t)) {
    // Sources regenerate their own output deterministically.
    return static_cast<int64_t>(topology_.task(t).output_rate *
                                static_cast<double>(span) * batch_seconds);
  }
  int64_t total = 0;
  const OperatorId to_op = topology_.task(t).op;
  for (int si : topology_.task(t).in_substreams) {
    const Substream& s = topology_.substreams()[si];
    const TaskRuntime* up = primaries_[static_cast<size_t>(s.from)].get();
    int64_t batches_with_data = 0;
    for (const BatchOutput& bo : up->output_buffer()) {
      if (bo.batch < from_batch || bo.batch > frontier_) {
        continue;
      }
      ++batches_with_data;
      total += static_cast<int64_t>(
          router_.RouteBatchTo(s.from, to_op, bo, t, nullptr));
    }
    // Batches a failed upstream will reproduce during its own recovery are
    // estimated analytically from the substream rate.
    const int64_t missing = span - batches_with_data;
    if (missing > 0 && (up->ever_failed() || !up->alive())) {
      total += static_cast<int64_t>(s.rate * static_cast<double>(missing) *
                                    batch_seconds);
    }
  }
  return total;
}

void StreamingJob::OnDetection() {
  if (!undetected_failures_.empty() && config_.ft_mode != FtMode::kNone) {
    trace_.Record(backend_->now(), obs::TraceEventKind::kFailureDetected, -1, -1,
                  static_cast<int64_t>(undetected_failures_.size()));
    RecoveryReport report;
    report.failure_time = last_failure_time_;
    report.detection_time = backend_->now();
    for (TaskId t : undetected_failures_) {
      TaskRecoverySpec spec;
      spec.task = t;
      TaskRuntime* rep = replica(t);
      const bool active_available =
          rep != nullptr && rep->alive() &&
          (config_.ft_mode == FtMode::kActiveReplication ||
           config_.ft_mode == FtMode::kPpa);
      if (active_available) {
        spec.kind = RecoveryKind::kActiveReplica;
        spec.resend_tuples = rep->BufferedTuples();
      } else if (config_.ft_mode == FtMode::kSourceReplay ||
                 config_.ft_mode == FtMode::kActiveReplication) {
        // Pure active replication with a dead replica falls back to
        // replaying from the sources (there are no checkpoints).
        spec.kind = RecoveryKind::kSourceReplay;
        const int64_t start =
            std::max<int64_t>(0, frontier_ + 1 - config_.window_batches);
        const double span_sec = static_cast<double>(frontier_ + 1 - start) *
                                config_.batch_interval.seconds();
        double rate = topology_.task(t).output_rate;
        if (!topology_.IsSourceTask(t)) {
          rate = 0;
          for (int si : topology_.task(t).in_substreams) {
            rate += topology_.substreams()[si].rate;
          }
        }
        spec.replay_tuples = static_cast<int64_t>(rate * span_sec);
      } else {
        spec.kind = RecoveryKind::kCheckpoint;
        // Loading a delta chain costs base + every delta. A thinned task
        // resumes at its certified skip frontier, so only batches past it
        // are replayed (the approximate-recovery speedup).
        spec.state_tuples = checkpoints_.ChainStateTuples(t);
        spec.replay_tuples =
            EstimateReplayTuples(t, checkpoints_.TrimBatch(t));
      }
      report.specs.push_back(spec);
    }
    report.schedule =
        ComputeRecoverySchedule(topology_, report.specs, config_.recovery);
    if (arbiter_ != nullptr) {
      // Cross-job arbitration: higher-ranked tenants of the shared
      // cluster recover first; this job's completions all shift by the
      // arbiter's hold (replica activation and checkpoint replay alike).
      const Duration hold = arbiter_(report.specs);
      if (hold > Duration::Zero()) {
        report.arbitration_hold = hold;
        for (auto& [task, completion] : report.schedule.completion) {
          completion += hold;
        }
        trace_.Record(backend_->now(), obs::TraceEventKind::kRecoveryArbitrated,
                      -1, -1, hold.micros(),
                      static_cast<int64_t>(report.specs.size()));
      }
    }
    for (const TaskRecoverySpec& spec : report.specs) {
      recovering_[spec.task] = spec.kind;
      if (config_.tentative_outputs &&
          spec.kind != RecoveryKind::kActiveReplica) {
        punctured_tasks_.insert(spec.task);
      }
      const Duration offset = report.schedule.completion.at(spec.task);
      trace_.Record(backend_->now(), obs::TraceEventKind::kRecoveryStart,
                    spec.task, -1, static_cast<int64_t>(spec.kind),
                    offset.micros());
      // Recovery completion is already scheduled below, so the span's
      // modeled extent is known at detection time.
      spans_.Record(obs::SpanCategory::kRecovery, spec.task, backend_->now(),
                    backend_->now() + offset);
      if (spec.kind == RecoveryKind::kActiveReplica) {
        obs::Add(m_recoveries_active_);
        obs::Observe(m_recovery_active_latency_s_, offset.seconds());
      } else {
        obs::Add(m_recoveries_passive_);
        obs::Observe(m_recovery_passive_latency_s_, offset.seconds());
      }
      obs::Observe(m_recovery_latency_s_, offset.seconds());
      ScheduleManaged(offset, [this, t = spec.task, k = spec.kind] {
        CompleteRecovery(t, k);
      });
    }
    reports_.push_back(std::move(report));
    undetected_failures_.clear();
    Advance();
  }
  if (config_.ft_mode == FtMode::kNone) {
    undetected_failures_.clear();
  }
  ScheduleManaged(config_.detection_interval, [this] { OnDetection(); });
}

void StreamingJob::CompleteRecovery(TaskId t, RecoveryKind kind) {
  recovering_.erase(t);
  punctured_tasks_.erase(t);
  switch (kind) {
    case RecoveryKind::kActiveReplica: {
      auto it = replicas_.find(t);
      PPA_CHECK(it != replicas_.end());
      std::unique_ptr<TaskRuntime> rep = std::move(it->second);
      replicas_.erase(it);
      rep->MarkAlive();
      // The replica is the primary now; its tuples count toward the
      // primary engine counters and span profile from here on.
      rep->AttachMetrics(m_tuples_primary_, m_batches_primary_);
      if (config_.observability) {
        rep->AttachSpans(&spans_, config_.process_cost_per_tuple_us);
      }
      if (topology_.IsSinkTask(t)) {
        // The dead primary's records stop where delivery stopped; deliver
        // the replica's buffered outputs from there on (the takeover
        // "resend buffered tuples" of Sec. V-B, here to the end user).
        for (const BatchOutput& bo : rep->output_buffer()) {
          if (bo.batch <= sink_recorded_until_[static_cast<size_t>(t)]) {
            continue;
          }
          const bool tentative = degraded_batches_.count(bo.batch) > 0;
          for (const Tuple& tuple : bo.tuples) {
            sink_records_.push_back(SinkRecord{
                tuple, tentative, backend_->now(), false, bo.ingest_at});
          }
          sink_recorded_until_[static_cast<size_t>(t)] = bo.batch;
          RecordSinkBatch(t, bo.batch,
                          static_cast<int64_t>(bo.tuples.size()), tentative,
                          bo.ingest_at, bo.hops);
        }
        rep->TrimOutputBuffer(frontier_);
      }
      primaries_[static_cast<size_t>(t)] = std::move(rep);
      // The placement follows the takeover: the standby node now hosts
      // the primary and its replica slot is free again.
      PPA_CHECK_OK(cluster_.PromoteReplicaToPrimary(t));
      active_set_.Remove(t);
      if (checkpoints_.Chain(t) != nullptr) {
        // The new primary's snapshot marker dates from replica
        // activation, so its next delta could overlap slices the dead
        // primary already persisted; rebase with a full snapshot.
        checkpoint_rebase_.insert(t);
      }
      break;
    }
    case RecoveryKind::kCheckpoint: {
      TaskRuntime* rt = primaries_[static_cast<size_t>(t)].get();
      const std::vector<TaskCheckpoint>* chain = checkpoints_.Chain(t);
      if (chain != nullptr) {
        PPA_CHECK_OK(rt->Restore((*chain)[0].blob));
        for (size_t i = 1; i < chain->size(); ++i) {
          PPA_CHECK_OK(rt->ApplyDelta((*chain)[i].blob));
        }
      } else {
        rt->Reset(0);
      }
      const int64_t restored = rt->next_batch();
      const int64_t resume = checkpoints_.TrimBatch(t);
      if (resume > restored) {
        // Approximate recovery (DESIGN.md §17): the gap [restored,
        // resume) was certified at skip time and its upstream buffers
        // trimmed, so it cannot be replayed; fast-forward over it and
        // report the divergence certificate into the recovery timeline.
        // Only a task whose checkpoints were thinned can get here —
        // TrimBatch equals CoveredBatch for every exact task.
        rt->FastForward(resume);
        af::ApproxCertificate cert;
        cert.task = t;
        cert.restored_batch = restored;
        cert.resumed_batch = resume;
        cert.forfeited = divergence_.OfTask(t);
        TaskSet self(topology_.num_tasks());
        self.Add(t);
        cert.certified_loss = af::CertifiedLossBound(topology_, self);
        cert.at = backend_->now();
        trace_.Record(backend_->now(), obs::TraceEventKind::kApproxRecovery,
                      t, -1, restored, resume);
        trace_.Record(backend_->now(),
                      obs::TraceEventKind::kDivergenceCertified, t, -1,
                      cert.forfeited.records,
                      static_cast<int64_t>(cert.certified_loss * 1e6));
        obs::Add(m_af_forfeited_records_, cert.forfeited.records);
        obs::Observe(m_af_certified_loss_, cert.certified_loss);
        approx_certificates_.push_back(std::move(cert));
      }
      if (config_.recovery_mode != af::RecoveryMode::kPpa) {
        // Catch-up replay re-observes every batch past the restore point,
        // so the drift epoch restarts at the restored state.
        divergence_.Clear(t, backend_->now());
      }
      rt->MarkAlive();
      break;
    }
    case RecoveryKind::kSourceReplay: {
      TaskRuntime* rt = primaries_[static_cast<size_t>(t)].get();
      rt->Reset(std::max<int64_t>(0, frontier_ + 1 - config_.window_batches));
      rt->MarkAlive();
      break;
    }
  }
  // A replica that died with its standby node cannot serve anyone again
  // (revivals never resurrect replica runtimes); drop its registration so
  // the consumed slot returns to the budget for a future plan apply.
  auto stale = replicas_.find(t);
  if (stale != replicas_.end() && !stale->second->alive()) {
    replicas_.erase(stale);
    cluster_.RemoveReplica(t);
    active_set_.Remove(t);
    trace_.Record(backend_->now(), obs::TraceEventKind::kReplicaDeactivated, t);
    obs::Add(m_replica_deactivations_);
  }
  trace_.Record(backend_->now(), obs::TraceEventKind::kRecoveryDone, t, -1,
                static_cast<int64_t>(kind));
  catching_up_.insert(t);
  Advance();
  NoteCaughtUpTasks();
}

Status StreamingJob::InjectNodeFailure(int node) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  if (node < 0 || node >= cluster_.num_nodes()) {
    return InvalidArgument("bad node id");
  }
  if (!cluster_.NodeAlive(node)) {
    return FailedPrecondition("node already failed");
  }
  cluster_.FailNode(node);
  return NotifyNodeFailed(node);
}

Status StreamingJob::NotifyNodeFailed(int node) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  if (node < 0 || node >= cluster_.num_nodes()) {
    return InvalidArgument("bad node id");
  }
  if (stopped_) {
    return OkStatus();
  }
  obs::Add(m_node_failures_);
  last_failure_time_ = backend_->now();
  last_failure_batch_ = frontier_;
  int64_t primaries_lost = 0;
  for (TaskId t : cluster_.PrimariesOn(node)) {
    if (primaries_[static_cast<size_t>(t)]->alive()) {
      ++primaries_lost;
    }
  }
  trace_.Record(backend_->now(), obs::TraceEventKind::kNodeFailure, -1, node,
                primaries_lost);
  for (TaskId t : cluster_.PrimariesOn(node)) {
    TaskRuntime* rt = primaries_[static_cast<size_t>(t)].get();
    if (rt->alive()) {
      rt->MarkFailed();
      undetected_failures_.insert(t);
      trace_.Record(backend_->now(), obs::TraceEventKind::kTaskFailed, t, node);
      obs::Add(m_task_failures_);
    }
  }
  for (TaskId t : cluster_.ReplicasOn(node)) {
    TaskRuntime* rep = replica(t);
    if (rep != nullptr && rep->alive()) {
      rep->MarkFailed();
    }
  }
  return OkStatus();
}

Status StreamingJob::InjectDomainFailure(int domain) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  const std::vector<int> nodes = cluster_.NodesInDomain(domain);
  if (nodes.empty()) {
    return NotFound("no nodes in failure domain");
  }
  for (int node : nodes) {
    if (cluster_.NodeAlive(node)) {
      PPA_RETURN_IF_ERROR(InjectNodeFailure(node));
    }
  }
  return OkStatus();
}

Status StreamingJob::InjectCorrelatedFailure(bool include_sources) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  std::set<int> nodes;
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    if (!include_sources && topology_.IsSourceTask(t)) {
      continue;
    }
    const int node = cluster_.NodeOfPrimary(t);
    if (node >= 0 && cluster_.NodeAlive(node)) {
      nodes.insert(node);
    }
  }
  for (int node : nodes) {
    PPA_RETURN_IF_ERROR(InjectNodeFailure(node));
  }
  return OkStatus();
}

Status StreamingJob::ReviveNode(int node) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  if (node < 0 || node >= cluster_.num_nodes()) {
    return InvalidArgument("bad node id");
  }
  if (cluster_.NodeAlive(node)) {
    return FailedPrecondition("node is alive");
  }
  cluster_.ReviveNode(node);
  trace_.Record(backend_->now(), obs::TraceEventKind::kNodeRevived, -1, node);
  return OkStatus();
}

Status StreamingJob::NotifyNodeRevived(int node) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  if (node < 0 || node >= cluster_.num_nodes()) {
    return InvalidArgument("bad node id");
  }
  if (stopped_) {
    return OkStatus();
  }
  trace_.Record(backend_->now(), obs::TraceEventKind::kNodeRevived, -1, node);
  return OkStatus();
}

Status StreamingJob::SetRecoveryArbiter(RecoveryArbiter arbiter) {
  if (started_) {
    return FailedPrecondition("SetRecoveryArbiter must precede Start");
  }
  arbiter_ = std::move(arbiter);
  return OkStatus();
}

void StreamingJob::ScheduleManaged(Duration delay, std::function<void()> fn) {
  if (stopped_) {
    return;
  }
  auto id = std::make_shared<uint64_t>(0);
  *id = backend_->ScheduleAfterOn(
      strand_, delay, [this, id, fn = std::move(fn)] {
        pending_events_.erase(*id);
        fn();
      });
  pending_events_.insert(*id);
}

void StreamingJob::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  for (uint64_t id : pending_events_) {
    (void)backend_->Cancel(id);
  }
  pending_events_.clear();
}

TaskSet StreamingJob::UnrecoveredTasks() const {
  TaskSet failed(topology_.num_tasks());
  if (!started_) {
    return failed;
  }
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    if (!primaries_[static_cast<size_t>(t)]->alive()) {
      failed.Add(t);
    }
  }
  return failed;
}

Status StreamingJob::ReviveDomain(int domain) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  const std::vector<int> nodes = cluster_.NodesInDomain(domain);
  if (nodes.empty()) {
    return NotFound("no nodes in failure domain");
  }
  bool revived_any = false;
  for (int node : nodes) {
    if (!cluster_.NodeAlive(node)) {
      PPA_RETURN_IF_ERROR(ReviveNode(node));
      revived_any = true;
    }
  }
  if (!revived_any) {
    return FailedPrecondition("every node in the domain is alive");
  }
  return OkStatus();
}

bool StreamingJob::AllRecovered() const {
  return undetected_failures_.empty() && recovering_.empty();
}

StatusOr<ReconciliationReport> StreamingJob::ReconcileTentativeOutputs(
    int64_t warmup_batches) {
  if (!started_) {
    return FailedPrecondition("job not started");
  }
  if (!AllRecovered()) {
    return FailedPrecondition("reconciliation requires completed recovery");
  }
  if (degraded_batches_.empty()) {
    return FailedPrecondition("no tentative outputs to reconcile");
  }
  ReconciliationReport report;
  report.from_batch = *degraded_batches_.begin();
  report.to_batch = *degraded_batches_.rbegin();
  if (report.to_batch > frontier_) {
    return FailedPrecondition("degraded batches still open");
  }

  // Shadow re-execution with complete inputs: fresh runtimes, warmed up
  // before the degraded range so windowed state is exact. Window state
  // nests across operator levels, so the default warm-up is one window
  // length per operator. Deterministic sources regenerate the ground-truth
  // input.
  if (warmup_batches < 0) {
    warmup_batches = config_.window_batches * topology_.num_operators();
  }
  const int64_t start =
      std::max<int64_t>(0, report.from_batch - warmup_batches);
  std::vector<std::unique_ptr<TaskRuntime>> shadow;
  shadow.reserve(static_cast<size_t>(topology_.num_tasks()));
  for (TaskId t = 0; t < topology_.num_tasks(); ++t) {
    shadow.push_back(MakeRuntime(t));
    shadow.back()->FastForward(start);
  }
  for (int64_t b = start; b <= report.to_batch; ++b) {
    for (OperatorId op : topology_.topo_order()) {
      for (TaskId t : topology_.op(op).tasks) {
        TaskRuntime* rt = shadow[static_cast<size_t>(t)].get();
        std::vector<Tuple> inputs;
        BatchRunContext ctx;
        ctx.now = backend_->now();
        ctx.ingest_at = BatchTickTime(b);
        const OperatorId to_op = topology_.task(t).op;
        for (int si : topology_.task(t).in_substreams) {
          const Substream& sub = topology_.substreams()[si];
          const BatchOutput* bo =
              shadow[static_cast<size_t>(sub.from)]->FindBatch(b);
          if (bo == nullptr) {
            continue;  // Upstream warm-up started later than needed.
          }
          ctx.ingest_at = std::min(ctx.ingest_at, bo->ingest_at);
          ctx.hops = std::max(ctx.hops, bo->hops + 1);
          router_.RouteBatchTo(sub.from, to_op, *bo, t, &inputs);
        }
        const size_t in_count = inputs.size();
        const BatchOutput& out = rt->RunBatch(b, std::move(inputs), true, ctx);
        report.reprocessed_tuples +=
            rt->is_source() ? static_cast<int64_t>(out.tuples.size())
                            : static_cast<int64_t>(in_count);
        if (topology_.IsSinkTask(t) && degraded_batches_.count(b) > 0) {
          for (const Tuple& tuple : out.tuples) {
            SinkRecord record;
            record.tuple = tuple;
            record.tentative = false;
            record.emitted_at = backend_->now();
            record.correction = true;
            record.ingest_at = out.ingest_at;
            report.corrected.push_back(record);
          }
        }
      }
    }
  }

  // Diff the corrected outputs against what was emitted tentatively for
  // the same batches (by batch/key/value identity).
  auto key_of = [](const Tuple& t) {
    return std::to_string(t.batch) + "|" + t.key + "|" +
           std::to_string(t.value) + "|" + std::to_string(t.producer);
  };
  std::multiset<std::string> tentative_set;
  for (const SinkRecord& r : sink_records_) {
    if (!r.correction && r.tuple.batch >= report.from_batch &&
        r.tuple.batch <= report.to_batch) {
      tentative_set.insert(key_of(r.tuple));
    }
  }
  std::multiset<std::string> corrected_set;
  for (const SinkRecord& r : report.corrected) {
    corrected_set.insert(key_of(r.tuple));
  }
  for (const std::string& k : corrected_set) {
    if (tentative_set.count(k) == 0) {
      ++report.missed_outputs;
    }
  }
  for (const std::string& k : tentative_set) {
    if (corrected_set.count(k) == 0) {
      ++report.spurious_outputs;
    }
  }

  sink_records_.insert(sink_records_.end(), report.corrected.begin(),
                       report.corrected.end());
  obs::Add(m_sink_corrections_, static_cast<int64_t>(report.corrected.size()));
  // Modeled reconciliation span: the shadow re-execution's CPU time.
  spans_.Record(obs::SpanCategory::kReconcile, -1, backend_->now(),
                backend_->now() +
                    Duration::Micros(static_cast<int64_t>(
                        static_cast<double>(report.reprocessed_tuples) *
                        config_.process_cost_per_tuple_us)));
  trace_.Record(backend_->now(), obs::TraceEventKind::kReconcileDone, -1, -1,
                report.missed_outputs, report.spurious_outputs);
  degraded_batches_.clear();
  return report;
}

}  // namespace ppa
