#ifndef PPA_RUNTIME_NODE_POOL_H_
#define PPA_RUNTIME_NODE_POOL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ppa {

/// Shared physical state of a simulated cluster: node liveness, failure
/// domains, and global placement load. A standalone single-job Cluster
/// owns its private pool; the multi-tenant ClusterService (src/service)
/// creates one pool and hands it to every tenant's Cluster view, so a
/// node failure, a domain assignment, or a standby's replica load is
/// visible to all tenants at once while per-task placement stays per job.
///
/// Node ids are dense: [0, num_workers) are workers,
/// [num_workers, num_workers + num_standbys) are standby nodes.
class NodePool {
 public:
  NodePool(int num_workers, int num_standbys);

  int num_workers() const { return num_workers_; }
  int num_standbys() const { return num_standbys_; }
  int num_nodes() const { return num_workers_ + num_standbys_; }

  /// True iff `node` is a standby node (hosts checkpoints/replicas).
  [[nodiscard]] bool IsStandby(int node) const { return node >= num_workers_; }
  /// True iff `node` has not failed (or has been revived).
  [[nodiscard]] bool NodeAlive(int node) const;
  void FailNode(int node);
  void ReviveNode(int node);

  /// Failure domains model the correlated-failure root causes of Sec. I
  /// (shared switches, racks, power): nodes in one domain fail together.
  /// By default every node is its own domain.
  Status AssignDomain(int node, int domain);
  int DomainOf(int node) const;
  /// All nodes currently assigned to `domain`, ascending.
  std::vector<int> NodesInDomain(int domain) const;

  /// Primaries placed on `node` across every Cluster view of this pool.
  [[nodiscard]] int64_t PrimaryLoad(int node) const;
  /// Replicas placed on `node` across every Cluster view of this pool.
  [[nodiscard]] int64_t ReplicaLoad(int node) const;
  /// Adjusts the global primary count of `node` (Cluster-internal).
  void AddPrimaryLoad(int node, int64_t delta);
  /// Adjusts the global replica count of `node` (Cluster-internal).
  void AddReplicaLoad(int node, int64_t delta);

  /// Alive worker nodes, ascending.
  [[nodiscard]] std::vector<int> AliveWorkers() const;
  /// Alive standby nodes, ascending.
  [[nodiscard]] std::vector<int> AliveStandbys() const;

 private:
  int num_workers_;
  int num_standbys_;
  std::vector<bool> node_alive_;
  std::vector<int> node_domain_;
  std::vector<int64_t> primary_load_;
  std::vector<int64_t> replica_load_;
};

}  // namespace ppa

#endif  // PPA_RUNTIME_NODE_POOL_H_
