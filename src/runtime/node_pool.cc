#include "runtime/node_pool.h"

#include "common/logging.h"

namespace ppa {

NodePool::NodePool(int num_workers, int num_standbys)
    : num_workers_(num_workers), num_standbys_(num_standbys) {
  PPA_CHECK(num_workers >= 1);
  PPA_CHECK(num_standbys >= 0);
  node_alive_.assign(static_cast<size_t>(num_nodes()), true);
  node_domain_.resize(static_cast<size_t>(num_nodes()));
  for (int node = 0; node < num_nodes(); ++node) {
    node_domain_[static_cast<size_t>(node)] = node;
  }
  primary_load_.assign(static_cast<size_t>(num_nodes()), 0);
  replica_load_.assign(static_cast<size_t>(num_nodes()), 0);
}

bool NodePool::NodeAlive(int node) const {
  PPA_CHECK(node >= 0 && node < num_nodes());
  return node_alive_[static_cast<size_t>(node)];
}

void NodePool::FailNode(int node) {
  PPA_CHECK(node >= 0 && node < num_nodes());
  node_alive_[static_cast<size_t>(node)] = false;
}

void NodePool::ReviveNode(int node) {
  PPA_CHECK(node >= 0 && node < num_nodes());
  node_alive_[static_cast<size_t>(node)] = true;
}

Status NodePool::AssignDomain(int node, int domain) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgument("AssignDomain: bad node id");
  }
  node_domain_[static_cast<size_t>(node)] = domain;
  return OkStatus();
}

int NodePool::DomainOf(int node) const {
  PPA_CHECK(node >= 0 && node < num_nodes());
  return node_domain_[static_cast<size_t>(node)];
}

std::vector<int> NodePool::NodesInDomain(int domain) const {
  std::vector<int> nodes;
  for (int node = 0; node < num_nodes(); ++node) {
    if (node_domain_[static_cast<size_t>(node)] == domain) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

int64_t NodePool::PrimaryLoad(int node) const {
  PPA_CHECK(node >= 0 && node < num_nodes());
  return primary_load_[static_cast<size_t>(node)];
}

int64_t NodePool::ReplicaLoad(int node) const {
  PPA_CHECK(node >= 0 && node < num_nodes());
  return replica_load_[static_cast<size_t>(node)];
}

void NodePool::AddPrimaryLoad(int node, int64_t delta) {
  PPA_CHECK(node >= 0 && node < num_nodes());
  primary_load_[static_cast<size_t>(node)] += delta;
  PPA_CHECK(primary_load_[static_cast<size_t>(node)] >= 0);
}

void NodePool::AddReplicaLoad(int node, int64_t delta) {
  PPA_CHECK(node >= 0 && node < num_nodes());
  replica_load_[static_cast<size_t>(node)] += delta;
  PPA_CHECK(replica_load_[static_cast<size_t>(node)] >= 0);
}

std::vector<int> NodePool::AliveWorkers() const {
  std::vector<int> nodes;
  for (int node = 0; node < num_workers_; ++node) {
    if (node_alive_[static_cast<size_t>(node)]) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

std::vector<int> NodePool::AliveStandbys() const {
  std::vector<int> nodes;
  for (int node = num_workers_; node < num_nodes(); ++node) {
    if (node_alive_[static_cast<size_t>(node)]) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

}  // namespace ppa
