#ifndef PPA_RUNTIME_STREAMING_JOB_H_
#define PPA_RUNTIME_STREAMING_JOB_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "af/divergence.h"
#include "af/error_budget.h"
#include "common/status.h"
#include "common/status_or.h"
#include "engine/operator.h"
#include "engine/router.h"
#include "engine/task_runtime.h"
#include "ft/checkpoint.h"
#include "ft/recovery_model.h"
#include "obs/fidelity_timeseries.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "backend/execution_backend.h"
#include "runtime/cluster.h"
#include "runtime/config.h"
#include "runtime/job_deps.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// One tuple emitted by a sink task, with batch provenance, whether it was
/// produced while part of the topology was failed (a tentative output,
/// Sec. V-B), and the virtual time at which it became available to the
/// user. Recovery replay can deliver old batches late: `emitted_at` far
/// after the batch's own time means the output missed its real-time
/// deadline (timeliness matters for the paper's tentative-output
/// evaluation).
struct SinkRecord {
  Tuple tuple;
  bool tentative = false;
  TimePoint emitted_at;
  /// True for records produced by ReconcileTentativeOutputs() — late
  /// corrections of a tentative window, not real-time output.
  bool correction = false;
  /// Source-ingest sim-time of the record's batch (latency lineage,
  /// threaded through the engine per hop): the batch's nominal source
  /// tick, which replayed batches keep, so Latency() reports the true
  /// end-to-end age of late deliveries.
  TimePoint ingest_at;

  /// End-to-end latency: source ingest to user-visible emission.
  Duration Latency() const { return emitted_at - ingest_at; }
};

/// Result of reconciling a tentative window after recovery (the
/// Borealis-style output correction the paper leaves as future work,
/// Sec. V-B): the corrected outputs and how much the tentative phase
/// missed or fabricated.
struct ReconciliationReport {
  /// Degraded batch range that was re-executed.
  int64_t from_batch = 0;
  int64_t to_batch = -1;
  /// Tuples reprocessed by the shadow re-execution (correction cost).
  int64_t reprocessed_tuples = 0;
  /// Sink outputs of the corrected run absent from the tentative output.
  int64_t missed_outputs = 0;
  /// Tentative sink outputs that the corrected run does not contain.
  int64_t spurious_outputs = 0;
  /// The corrected sink records (also appended to sink_records() with
  /// correction = true).
  std::vector<SinkRecord> corrected;
};

/// Everything the master decided about one detected failure.
struct RecoveryReport {
  TimePoint failure_time;
  TimePoint detection_time;
  /// Failed tasks and how each is being recovered.
  std::vector<TaskRecoverySpec> specs;
  /// Completion offsets relative to detection_time (inclusive of any
  /// cross-job arbitration hold).
  RecoverySchedule schedule;
  /// Extra delay the cross-job recovery arbiter imposed on every
  /// completion of this detection (zero without an arbiter).
  Duration arbitration_hold = Duration::Zero();

  /// The paper's recovery latency: detection to last task recovered.
  Duration TotalLatency() const { return schedule.MaxLatency(); }
  /// Latency restricted to tasks recovered from active replicas
  /// (PPA-x-active in Fig. 10).
  Duration ActiveLatency() const;
  /// Latency restricted to passively recovered tasks.
  Duration PassiveLatency() const;
};

/// A complete streaming job (Sec. V): the query topology bound to
/// operator implementations, executed batch-synchronously on a virtual
/// cluster driven by an execution backend (the deterministic simulator,
/// or real threads with the sim as parity oracle — DESIGN.md §16), with
/// checkpointing, active replication, failure injection, recovery, and
/// tentative-output generation.
///
/// Lifecycle: construct -> Bind*() -> SetActiveReplicaSet() (optional) ->
/// Start() -> backend->RunUntil(...) interleaved with Inject*Failure() ->
/// inspect sink_records() / recovery_reports() / cost counters.
///
/// The whole job runs on one backend strand (JobRuntimeDeps::strand), so
/// its event order is identical on every backend; all public methods are
/// called either from that strand's callbacks (ScenarioRunner events) or
/// from the driver thread between drives.
class StreamingJob {
 public:
  /// `deps.backend` must be non-null and outlive the job; a null
  /// `deps.pool` gives the job a private cluster sized from `config` (see
  /// JobRuntimeDeps).
  StreamingJob(Topology topology, JobConfig config, JobRuntimeDeps deps);
  ~StreamingJob();

  StreamingJob(const StreamingJob&) = delete;
  StreamingJob& operator=(const StreamingJob&) = delete;

  const Topology& topology() const { return topology_; }
  const JobConfig& config() const { return config_; }
  Cluster& cluster() { return cluster_; }
  /// The backend running this job's events.
  backend::ExecutionBackend* backend() const { return backend_; }
  /// The backend strand every event of this job is scheduled on.
  uint64_t strand() const { return strand_; }

  /// Binds a factory for all tasks of a non-source operator.
  Status BindOperator(OperatorId op, OperatorFactory factory);
  /// Binds a factory for all tasks of a source operator.
  Status BindSource(OperatorId op, SourceFactory factory);

  /// Selects the tasks that get an active replica. Required for kPpa
  /// (kActiveReplication implies all tasks). Must be called before
  /// Start().
  Status SetActiveReplicaSet(const TaskSet& tasks);

  /// Validates bindings, instantiates runtimes, places tasks, and
  /// schedules the recurring engine events. The job then advances as the
  /// event loop runs.
  Status Start();

  /// Changes the active replica set while the job is running (dynamic plan
  /// adaptation, Sec. V-C): replicas of tasks leaving the plan are
  /// deactivated and their standby resources released; tasks entering the
  /// plan get a fresh replica initialized from the primary's latest
  /// checkpoint (or a direct state transfer if none exists) that catches
  /// up from the upstream output buffers. Tasks that are currently failed
  /// or recovering keep their previous replication status.
  Status ApplyActiveReplicaSet(const TaskSet& tasks);

  /// Periodically re-plans the active replica set: every `interval`, the
  /// job snapshots the observed per-task rates (ObservedTopology()), asks
  /// `planner` for a new plan, and applies it with
  /// ApplyActiveReplicaSet(). Must be called before Start().
  using AdaptationPlanner = std::function<StatusOr<TaskSet>(const Topology&)>;
  Status EnablePlanAdaptation(Duration interval, AdaptationPlanner planner);

  /// A copy of the topology whose source rates, task weights, and operator
  /// selectivities are re-derived from the rates *observed* since the last
  /// observation point (or job start), for rate-aware re-planning. Falls
  /// back to the static rates for tasks that processed nothing yet.
  StatusOr<Topology> ObservedTopology();

  /// Kills a node: every primary/replica hosted on it fails. Takes effect
  /// immediately; detection happens at the master's next heartbeat check.
  Status InjectNodeFailure(int node);

  /// Kills every alive node of a failure domain (a rack/switch outage —
  /// the correlated-failure root cause of Sec. I).
  Status InjectDomainFailure(int domain);

  /// Kills every worker node that hosts at least one primary of a
  /// non-source operator (the paper's correlated-failure experiment kills
  /// all processing nodes but keeps the sources feeding data).
  Status InjectCorrelatedFailure(bool include_sources = false);

  /// Brings a previously failed node back. The node becomes eligible for
  /// replica placement and future failures again; tasks whose primaries
  /// live on it keep whatever recovery state the normal detection path
  /// gave them (revival never resurrects a failed runtime by itself).
  Status ReviveNode(int node);

  /// Revives every failed node of a failure domain (rack power restored).
  Status ReviveDomain(int domain);

  /// Reacts to a node failure that already happened in the *shared* node
  /// pool (the multi-tenant service fails the node once, then notifies
  /// every tenant job): marks this job's primaries/replicas hosted on
  /// `node` failed and records the failure, without touching pool
  /// liveness. InjectNodeFailure == pool FailNode + NotifyNodeFailed.
  Status NotifyNodeFailed(int node);

  /// Shared-pool counterpart of ReviveNode: records the revival in this
  /// job's trace without touching pool liveness.
  Status NotifyNodeRevived(int node);

  /// Cross-job recovery arbitration hook (src/service): consulted once
  /// per detection that found failures, after the recovery schedule is
  /// computed; the returned hold is added to every completion offset of
  /// the detection, delaying replica activation and checkpoint replay
  /// behind higher-ranked tenants. Must be set before Start().
  using RecoveryArbiter =
      std::function<Duration(const std::vector<TaskRecoverySpec>& specs)>;
  Status SetRecoveryArbiter(RecoveryArbiter arbiter);

  /// Cancels every pending event of this job on the backend and stops
  /// all recurring engine activity (tenant eviction). Irreversible; the
  /// job's records, metrics, and traces stay readable.
  void Stop();
  /// True once Stop() ran.
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Tasks whose primary copy is currently dead (detected or not,
  /// recovery not yet completed) — the fidelity-at-risk input of the
  /// cross-job arbiter.
  [[nodiscard]] TaskSet UnrecoveredTasks() const;

  /// True when no task is failed or awaiting recovery completion.
  [[nodiscard]] bool AllRecovered() const;

  /// Corrects the tentative outputs of the last failure (Sec. V-B's
  /// deferred reconciliation): deterministically re-executes the topology
  /// over the degraded batch range (with a window-length warm-up) on
  /// shadow runtimes fed complete inputs, appends the corrected sink
  /// records (flagged `correction`), and reports what the tentative phase
  /// missed. Requires every task to be recovered and at least one
  /// degraded batch.
  /// `warmup_batches` controls how far before the degraded range the
  /// shadow run starts so windowed state is exact; the default (-1) uses
  /// one window length per operator level (windows nest across stages).
  StatusOr<ReconciliationReport> ReconcileTentativeOutputs(
      int64_t warmup_batches = -1);

  /// Last batch index whose source emission tick has fired.
  int64_t frontier() const { return frontier_; }

  /// The primary runtime of a task (for tests/inspection).
  TaskRuntime* primary(TaskId t) { return primaries_[static_cast<size_t>(t)].get(); }
  const TaskRuntime* primary(TaskId t) const {
    return primaries_[static_cast<size_t>(t)].get();
  }
  /// The replica runtime, or nullptr.
  TaskRuntime* replica(TaskId t);

  const std::vector<SinkRecord>& sink_records() const { return sink_records_; }
  const std::vector<RecoveryReport>& recovery_reports() const {
    return reports_;
  }
  const CheckpointStore& checkpoint_store() const { return checkpoints_; }

  /// Divergence certificates of every approximate recovery under
  /// config().recovery_mode != kPpa (DESIGN.md §17); empty for exact
  /// runs. Checked against the golden twin by the chaos error-budget
  /// invariant.
  const std::vector<af::ApproxCertificate>& approx_certificates() const {
    return approx_certificates_;
  }
  /// Total serialized bytes of every persisted checkpoint blob (full and
  /// delta) this job wrote — the cost axis checkpoint thinning shrinks.
  int64_t CheckpointBytesWritten() const { return checkpoint_bytes_written_; }
  /// Due checkpoints skipped under the error budget.
  int64_t CheckpointsSkipped() const { return checkpoints_skipped_; }

  /// The job's metric registry (counters/gauges/histograms named
  /// "subsystem.metric"; empty when config().observability is false).
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The job's sim-time trace (failures, checkpoints, recovery phases,
  /// tentative/stable sink emissions).
  const obs::TraceLog& trace() const { return trace_; }
  /// The job's span profile (batch-process/replay/checkpoint/recovery/
  /// planner-run/reconcile spans nested under the loop's sim-run roots;
  /// empty when config().observability is false).
  const obs::SpanProfiler& spans() const { return spans_; }
  /// OF(t)/IC(t) samples taken per sink delivery during tentative
  /// windows (empty when observability is off or no window opened).
  const obs::FidelityTimeseries& fidelity_timeseries() const {
    return fidelity_;
  }
  /// The always-on bounded post-mortem ring: the last
  /// config().flight_recorder_capacity trace events, recorded even when
  /// config().observability is false (chaos repros and crash dumps read
  /// this). Empty when the capacity is 0.
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

  /// Cumulative normal-processing CPU microseconds of a task.
  double ProcessingCostUs(TaskId t) const {
    return processing_us_[static_cast<size_t>(t)];
  }
  /// Cumulative checkpointing CPU microseconds of a task.
  double CheckpointCostUs(TaskId t) const {
    return checkpoint_us_[static_cast<size_t>(t)];
  }
  /// Number of checkpoints taken for a task.
  int64_t CheckpointCount(TaskId t) const {
    return checkpoint_count_[static_cast<size_t>(t)];
  }

  /// Tuples currently held in all primaries' output buffers (the
  /// upstream-replay memory the checkpoint trimming protocol bounds).
  int64_t CurrentBufferedTuples() const;
  /// Highest CurrentBufferedTuples() observed at any batch tick.
  int64_t PeakBufferedTuples() const { return peak_buffered_tuples_; }

 private:
  /// Dataflow scheduler: advances every runnable task until quiescence.
  void Advance();
  bool TryAdvance(TaskRuntime* rt, bool is_replica);
  /// True if every upstream of `t` is resolved for batch `b` (data
  /// present, already produced-and-skipped, or punctuation-substituted).
  bool CanProcess(TaskId t, int64_t b) const;
  /// Collects the batch-`b` tuples routed to `t`; sets *punctured if any
  /// upstream contributed a punctuation instead of data. Folds the
  /// upstream batches' latency lineage into `ctx` (earliest ingest,
  /// max hops + 1) when non-null.
  std::vector<Tuple> GatherInputs(TaskId t, int64_t b, bool* punctured,
                                  BatchRunContext* ctx);

  /// Nominal source tick time of batch `b` (lineage stamp for sources
  /// and punctuation-fed batches).
  TimePoint BatchTickTime(int64_t b) const {
    return first_tick_at_ + config_.batch_interval * b;
  }

  void OnBatchTick();
  void OnCheckpoint(TaskId t);
  /// True when `t` runs under the bounded-error contract: always for
  /// kApprox; for kHybrid only while the task is outside the active
  /// replica plan (the hybrid placement rule of DESIGN.md §17).
  bool ApproxEligible(TaskId t) const;
  /// The thinning gate: whether the due checkpoint of `t` may be
  /// skipped — eligibility, fresh coverage to certify, the error budget
  /// over the job's at-risk drift, and the certified-loss cap.
  bool ShouldSkipCheckpoint(TaskId t, TaskRuntime* rt) const;
  void OnReplicaSync();
  void OnDetection();
  void OnAdaptation();
  /// Creates a replica for `t` seeded from the primary's latest checkpoint
  /// (or a live snapshot) so it can catch up from upstream buffers.
  Status ActivateReplica(TaskId t);
  /// Instantiates a fresh runtime (primary or replica) for `t`.
  std::unique_ptr<TaskRuntime> MakeRuntime(TaskId t);
  void CompleteRecovery(TaskId t, RecoveryKind kind);
  /// Trims upstream output buffers given fresh checkpoint coverage.
  void TrimUpstreamBuffers(TaskId checkpointed);

  /// Creates the metric handles and attaches subcomponents (no-op when
  /// config_.observability is false: every handle stays nullptr and the
  /// trace is disabled).
  void InitObservability();
  /// Books one delivered sink batch: counters, end-to-end latency
  /// histograms (stable vs. tentative, aggregate and per sink task), the
  /// stable/tentative trace event, the tentative-window open/close
  /// transitions, and — while a window is open — one OF/IC fidelity
  /// sample.
  void RecordSinkBatch(TaskId t, int64_t batch, int64_t tuples,
                       bool tentative, TimePoint ingest_at, int32_t hops);
  /// Emits kTaskCaughtUp for recovered tasks that reached the frontier.
  void NoteCaughtUpTasks();

  /// Schedules `fn` on the job's strand after `delay` and tracks the
  /// event id so Stop() can cancel it. Every recurring/deferred job event
  /// goes through here (one backend schedule call per call, so event ids
  /// are unchanged from scheduling directly).
  void ScheduleManaged(Duration delay, std::function<void()> fn);

  /// Estimated tuples `t` must replay for checkpoint recovery, counted
  /// from real upstream buffers where available.
  int64_t EstimateReplayTuples(TaskId t, int64_t from_batch) const;

  bool started_ = false;
  bool stopped_ = false;
  /// Pending backend event ids Stop() must cancel (ordered for
  /// deterministic cancellation).
  std::set<uint64_t> pending_events_;
  /// Cross-job recovery arbiter (nullptr outside the service).
  RecoveryArbiter arbiter_;
  Topology topology_;
  JobConfig config_;
  backend::ExecutionBackend* backend_;
  /// The one strand all of this job's events run on (see class comment).
  uint64_t strand_;
  /// Whether Start() attaches metrics_/spans_ to the backend.
  bool attach_backend_observability_;
  Router router_;
  Cluster cluster_;
  CheckpointStore checkpoints_;

  std::vector<OperatorFactory> op_factories_;
  std::vector<SourceFactory> source_factories_;
  TaskSet active_set_;

  std::vector<std::unique_ptr<TaskRuntime>> primaries_;
  std::map<TaskId, std::unique_ptr<TaskRuntime>> replicas_;

  int64_t frontier_ = -1;
  /// Time of the first batch tick (anchor of BatchTickTime()).
  TimePoint first_tick_at_;
  /// Failed tasks not yet detected by the master.
  std::set<TaskId> undetected_failures_;
  /// Tasks whose recovery is pending (detected, completion scheduled).
  std::map<TaskId, RecoveryKind> recovering_;
  /// Failed tasks replaced by punctuations in tentative mode.
  std::set<TaskId> punctured_tasks_;
  /// Batches that were processed with at least one punctuation.
  std::set<int64_t> degraded_batches_;
  TimePoint last_failure_time_;
  int64_t last_failure_batch_ = -1;

  std::vector<SinkRecord> sink_records_;
  /// Per-task highest batch already delivered to the user (duplicate
  /// suppression when a recovered sink replays old batches).
  std::vector<int64_t> sink_recorded_until_;
  std::vector<RecoveryReport> reports_;

  std::vector<double> processing_us_;
  std::vector<double> checkpoint_us_;
  std::vector<int64_t> checkpoint_count_;
  int64_t peak_buffered_tuples_ = 0;
  int64_t checkpoint_bytes_written_ = 0;
  int64_t checkpoints_skipped_ = 0;
  /// Tasks whose next persisted checkpoint must be a full rebase: a
  /// promoted replica's snapshot lineage diverges from the dead
  /// primary's delta chain (its snapshot marker dates from activation),
  /// so a delta on top of that chain could duplicate already-persisted
  /// window slices and corrupt the chain for later restores.
  std::set<TaskId> checkpoint_rebase_;

  /// Approximate fault tolerance (src/af, DESIGN.md §17): per-task
  /// un-persisted drift and the certificates of thinned recoveries.
  /// Inert (never observed into) when recovery_mode == kPpa.
  af::DivergenceTracker divergence_;
  std::vector<af::ApproxCertificate> approx_certificates_;

  /// Dynamic plan adaptation (Sec. V-C).
  Duration adaptation_interval_ = Duration::Zero();
  AdaptationPlanner adaptation_planner_;
  /// Per-task emitted/processed-tuple counts and time at the last
  /// observation point.
  std::vector<int64_t> observed_emitted_;
  std::vector<int64_t> observed_processed_;
  TimePoint observed_at_;

  /// Observability (src/obs/): write-only recording, gated by
  /// config_.observability. All handles are nullptr when disabled; the
  /// obs::Add/Set/Observe helpers make every call site null-safe.
  obs::MetricsRegistry metrics_;
  obs::TraceLog trace_;
  /// Always-on bounded tail of trace_ (fed as its mirror), sized by
  /// config_.flight_recorder_capacity. Unlike everything else here it is
  /// NOT gated by config_.observability.
  obs::FlightRecorder flight_;
  obs::SpanProfiler spans_;
  obs::FidelityTimeseries fidelity_;
  /// A tentative-output window is open (kTentativeWindowBegin emitted,
  /// end not yet seen).
  bool tentative_window_open_ = false;
  /// Highest batch any sink delivered tentatively in the open window;
  /// recorded as the window's closing batch (a lagging recovered sink may
  /// close the window while replaying batches below the window start).
  int64_t tentative_window_last_batch_ = -1;
  /// Recovered tasks whose backlog has not yet reached the frontier
  /// (kTaskCaughtUp pending).
  std::set<TaskId> catching_up_;
  obs::Counter* m_batch_ticks_ = nullptr;
  obs::Counter* m_tuples_primary_ = nullptr;
  obs::Counter* m_batches_primary_ = nullptr;
  obs::Counter* m_tuples_replica_ = nullptr;
  obs::Counter* m_batches_replica_ = nullptr;
  obs::Counter* m_node_failures_ = nullptr;
  obs::Counter* m_task_failures_ = nullptr;
  obs::Counter* m_recoveries_active_ = nullptr;
  obs::Counter* m_recoveries_passive_ = nullptr;
  obs::Counter* m_replica_activations_ = nullptr;
  obs::Counter* m_replica_deactivations_ = nullptr;
  obs::Counter* m_sink_records_ = nullptr;
  obs::Counter* m_sink_tentative_ = nullptr;
  obs::Counter* m_sink_corrections_ = nullptr;
  obs::Counter* m_af_skipped_ = nullptr;
  obs::Counter* m_af_forfeited_records_ = nullptr;
  obs::Histogram* m_af_certified_loss_ = nullptr;
  obs::Gauge* m_buffered_tuples_ = nullptr;
  obs::Gauge* m_output_buffer_batches_ = nullptr;
  obs::Gauge* m_buffered_bytes_estimate_ = nullptr;
  obs::Gauge* m_router_max_fanout_ = nullptr;
  obs::Gauge* m_checkpoint_bytes_total_ = nullptr;
  obs::Histogram* m_checkpoint_duration_us_ = nullptr;
  obs::Histogram* m_checkpoint_state_tuples_ = nullptr;
  obs::Histogram* m_recovery_latency_s_ = nullptr;
  obs::Histogram* m_recovery_active_latency_s_ = nullptr;
  obs::Histogram* m_recovery_passive_latency_s_ = nullptr;
  obs::Histogram* m_tuples_per_batch_ = nullptr;
  obs::Histogram* m_sink_latency_stable_ = nullptr;
  obs::Histogram* m_sink_latency_tentative_ = nullptr;
  obs::Histogram* m_sink_lineage_hops_ = nullptr;
  /// Per-sink-task latency handles, indexed by task id (nullptr for
  /// non-sink tasks or with observability off).
  std::vector<obs::Histogram*> m_sink_task_latency_stable_;
  std::vector<obs::Histogram*> m_sink_task_latency_tentative_;
};

}  // namespace ppa

#endif  // PPA_RUNTIME_STREAMING_JOB_H_
