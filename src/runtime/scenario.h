#ifndef PPA_RUNTIME_SCENARIO_H_
#define PPA_RUNTIME_SCENARIO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "report/json.h"
#include "runtime/streaming_job.h"

namespace ppa {

/// One timed cluster event of a failure drill.
struct ScenarioEvent {
  enum class Kind {
    /// Kill one node (`node`).
    kNodeFailure,
    /// Kill a failure domain (`domain`).
    kDomainFailure,
    /// Kill every node hosting primaries (`include_sources`).
    kCorrelatedFailure,
    /// Swap the active replica set to `plan` (dynamic adaptation).
    kApplyPlan,
    /// Reconcile the tentative outputs accumulated so far.
    kReconcile,
    /// Bring a failed node (`node`) back.
    kReviveNode,
    /// Revive every failed node of a failure domain (`domain`).
    kReviveDomain,
  };

  Duration at;  ///< Offset from scenario scheduling time.
  Kind kind = Kind::kNodeFailure;
  int node = -1;
  int domain = -1;
  bool include_sources = false;
  std::vector<TaskId> plan;

  bool operator==(const ScenarioEvent&) const = default;
};

/// Stable wire name of a scenario event kind (matches the script verbs:
/// "fail-node", "fail-domain", "fail-correlated", "apply-plan",
/// "reconcile", "revive-node", "revive-domain").
std::string_view ScenarioEventKindToString(ScenarioEvent::Kind kind);

/// Inverse of ScenarioEventKindToString.
StatusOr<ScenarioEvent::Kind> ScenarioEventKindFromString(
    std::string_view name);

/// Drives a scripted timeline of failures/plan changes against a running
/// job and records each event's outcome. Events execute on the job's
/// backend strand at their offsets, in order for equal offsets.
class ScenarioRunner {
 public:
  /// `job` must outlive the runner and must be started before the
  /// backend runs; events go to the job's backend and strand.
  explicit ScenarioRunner(StreamingJob* job);

  /// Schedules every event relative to the backend's current time. A runner
  /// drives exactly one timeline: any second call (even after an empty
  /// first one) returns FailedPrecondition.
  Status Run(std::vector<ScenarioEvent> events);

  /// Statuses of the events that have executed so far, in execution order.
  const std::vector<Status>& outcomes() const { return outcomes_; }
  /// True once every scheduled event has executed. Also true before Run()
  /// is called and after an empty Run(): a scenario with nothing left to
  /// do is finished.
  bool finished() const { return executed_ == scheduled_; }
  /// First non-OK outcome, or OK.
  Status FirstError() const;

 private:
  void Execute(const ScenarioEvent& event);

  StreamingJob* job_;
  bool ran_ = false;
  size_t scheduled_ = 0;
  size_t executed_ = 0;
  std::vector<Status> outcomes_;
};

/// Looks a task up by its TaskLabel() ("mid[1]").
StatusOr<TaskId> FindTaskByLabel(const Topology& topology,
                                 std::string_view label);

/// Parses a line-oriented scenario script:
///
///   # comment
///   at <seconds> fail-node <node>
///   at <seconds> fail-domain <domain>
///   at <seconds> fail-correlated [with-sources]
///   at <seconds> apply-plan <task-label>...
///   at <seconds> reconcile
///   at <seconds> revive-node <node>
///   at <seconds> revive-domain <domain>
///
/// Task labels use the TaskLabel() form ("op[index]") and are resolved
/// against `topology`.
StatusOr<std::vector<ScenarioEvent>> ParseScenario(const Topology& topology,
                                                   std::string_view script);

/// Serializes one event as a JSON object: {"at_us": <micros>, "kind":
/// <wire name>, ...} with only the kind's relevant payload fields present
/// ("node", "domain", "include_sources", "plan" as a task-id array).
JsonValue ScenarioEventToJson(const ScenarioEvent& event);

/// Serializes a timeline as a JSON array of event objects.
JsonValue ScenarioToJson(const std::vector<ScenarioEvent>& events);

/// Inverse of ScenarioEventToJson.
StatusOr<ScenarioEvent> ScenarioEventFromJson(const JsonValue& json);

/// Inverse of ScenarioToJson. `json` must be an array of event objects.
StatusOr<std::vector<ScenarioEvent>> ScenarioFromJson(const JsonValue& json);

/// Parses a scenario from JSON text (a serialized ScenarioToJson array).
StatusOr<std::vector<ScenarioEvent>> ParseScenarioJson(std::string_view text);

}  // namespace ppa

#endif  // PPA_RUNTIME_SCENARIO_H_
