#ifndef PPA_RUNTIME_SCENARIO_H_
#define PPA_RUNTIME_SCENARIO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "runtime/streaming_job.h"

namespace ppa {

/// One timed cluster event of a failure drill.
struct ScenarioEvent {
  enum class Kind {
    /// Kill one node (`node`).
    kNodeFailure,
    /// Kill a failure domain (`domain`).
    kDomainFailure,
    /// Kill every node hosting primaries (`include_sources`).
    kCorrelatedFailure,
    /// Swap the active replica set to `plan` (dynamic adaptation).
    kApplyPlan,
    /// Reconcile the tentative outputs accumulated so far.
    kReconcile,
  };

  Duration at;  ///< Offset from scenario scheduling time.
  Kind kind = Kind::kNodeFailure;
  int node = -1;
  int domain = -1;
  bool include_sources = false;
  std::vector<TaskId> plan;
};

/// Drives a scripted timeline of failures/plan changes against a running
/// job and records each event's outcome. Events execute on the job's event
/// loop at their offsets, in order for equal offsets.
class ScenarioRunner {
 public:
  /// `job` and `loop` must outlive the runner; the job must be started.
  ScenarioRunner(StreamingJob* job, EventLoop* loop);

  /// Schedules every event. Call once.
  Status Run(std::vector<ScenarioEvent> events);

  /// Statuses of the events that have executed so far, in execution order.
  const std::vector<Status>& outcomes() const { return outcomes_; }
  /// True once every scheduled event has executed.
  bool finished() const { return executed_ == scheduled_; }
  /// First non-OK outcome, or OK.
  Status FirstError() const;

 private:
  void Execute(const ScenarioEvent& event);

  StreamingJob* job_;
  EventLoop* loop_;
  size_t scheduled_ = 0;
  size_t executed_ = 0;
  std::vector<Status> outcomes_;
};

/// Looks a task up by its TaskLabel() ("mid[1]").
StatusOr<TaskId> FindTaskByLabel(const Topology& topology,
                                 std::string_view label);

/// Parses a line-oriented scenario script:
///
///   # comment
///   at <seconds> fail-node <node>
///   at <seconds> fail-domain <domain>
///   at <seconds> fail-correlated [with-sources]
///   at <seconds> apply-plan <task-label>...
///   at <seconds> reconcile
///
/// Task labels use the TaskLabel() form ("op[index]") and are resolved
/// against `topology`.
StatusOr<std::vector<ScenarioEvent>> ParseScenario(const Topology& topology,
                                                   std::string_view script);

}  // namespace ppa

#endif  // PPA_RUNTIME_SCENARIO_H_
