#ifndef PPA_RUNTIME_DOMAIN_ANALYSIS_H_
#define PPA_RUNTIME_DOMAIN_ANALYSIS_H_

#include <vector>

#include "common/status_or.h"
#include "runtime/cluster.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// Tentative-output fidelity after a specific failure domain fails, given
/// the placement in `cluster` and the active replica set `replicated`:
/// primaries on the domain's nodes fail; those with an alive replica
/// *outside* the domain ride through (the replica takes over), the rest
/// contribute loss. This connects the paper's OF machinery with the
/// placement-aware correlated-failure model it cites (Zen, INFOCOM'08).
struct DomainFailureImpact {
  int domain = -1;
  /// Primaries hosted in the domain.
  int tasks_hosted = 0;
  /// Of those, tasks that survive through an out-of-domain replica.
  int tasks_covered = 0;
  /// OF of the tentative output while the domain is down.
  double fidelity = 1.0;
};

/// Impact of failing `domain`.
StatusOr<DomainFailureImpact> AnalyzeDomainFailure(const Topology& topology,
                                                   const Cluster& cluster,
                                                   const TaskSet& replicated,
                                                   int domain);

/// Impact of every domain that hosts at least one primary, sorted by
/// ascending fidelity (worst first). The first entry is the cluster's
/// weakest point under the plan.
StatusOr<std::vector<DomainFailureImpact>> AnalyzeAllDomains(
    const Topology& topology, const Cluster& cluster,
    const TaskSet& replicated);

}  // namespace ppa

#endif  // PPA_RUNTIME_DOMAIN_ANALYSIS_H_
