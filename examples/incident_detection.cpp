// Q2 example: the community-navigation incident-detection query
// (Sec. VI-B): a correlated-input join between a per-segment average-speed
// stream and a deduplicated user-report stream. Demonstrates why the join
// makes the Internal Completeness metric mispredict tentative accuracy
// while Output Fidelity gets it right.

#include <cstdio>

#include "fidelity/metrics.h"
#include "planner/structure_aware_planner.h"
#include "runtime/streaming_job.h"
#include "backend/sim_backend.h"
#include "workloads/accuracy.h"
#include "workloads/incident.h"

namespace {

ppa::JobConfig IncidentConfig() {
  ppa::JobConfig config;
  config.ft_mode = ppa::FtMode::kPpa;
  config.num_worker_nodes = 25;
  config.num_standby_nodes = 25;
  config.checkpoint_interval = ppa::Duration::Seconds(10);
  config.detection_interval = ppa::Duration::Seconds(5);
  config.recovery.replay_rate_tuples_per_sec = 500.0;
  config.recovery.task_restart_delay = ppa::Duration::Seconds(3);
  return config;
}

}  // namespace

int main() {
  using namespace ppa;

  IncidentSchedule::Options schedule_options;
  schedule_options.num_segments = 1000;
  schedule_options.num_users = 100000;
  schedule_options.zipf_s = 0.5;  // The paper's user distribution.
  IncidentSchedule schedule(schedule_options);
  auto workload = MakeIncidentWorkload(schedule_options,
                                       /*location_rate_per_task=*/2500);
  PPA_CHECK_OK(workload.status());
  const Topology& topo = workload->topo;
  std::printf("Q2 topology: %d tasks; join operator is correlated-input\n",
              topo.num_tasks());

  // Show the OF-vs-IC disagreement: fail the (low-rate) report stream.
  // Losing it starves the join completely — no alarms can ever fire — yet
  // IC barely drops because the lost stream carries only a tiny fraction
  // of the input tuples.
  TaskSet reports_failed(topo.num_tasks());
  for (TaskId t : topo.op(workload->distinct).tasks) {
    reports_failed.Add(t);
  }
  std::printf(
      "if the report stream fails: OF=%.3f (the join starves), IC=%.3f "
      "(ignores stream correlation and barely notices)\n",
      ComputeOutputFidelity(topo, reports_failed),
      ComputeInternalCompleteness(topo, reports_failed));

  // Reference clean run.
  backend::SimBackend clean_loop;
  StreamingJob clean(topo, IncidentConfig(), JobRuntimeDeps(&clean_loop));
  PPA_CHECK_OK(BindIncidentWorkload(*workload, &schedule, &clean));
  PPA_CHECK_OK(clean.Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));

  // PPA run with a 50% replication budget and a correlated failure.
  StructureAwarePlanner planner;
  auto plan = planner.Plan(PlanRequest(topo, topo.num_tasks() / 2));
  PPA_CHECK_OK(plan.status());
  backend::SimBackend loop;
  StreamingJob job(topo, IncidentConfig(), JobRuntimeDeps(&loop));
  PPA_CHECK_OK(BindIncidentWorkload(*workload, &schedule, &job));
  PPA_CHECK_OK(job.SetActiveReplicaSet(plan->replicated));
  PPA_CHECK_OK(job.Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(20.2));
  PPA_CHECK_OK(job.InjectCorrelatedFailure(/*include_sources=*/true));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));

  PPA_CHECK(job.recovery_reports().size() == 1);
  const RecoveryReport& report = job.recovery_reports()[0];
  const int64_t detect_batch = report.detection_time.micros() / 1000000;
  const int64_t end_batch =
      (report.detection_time + report.PassiveLatency()).micros() / 1000000;
  const auto timely =
      FilterTimely(job.sink_records(), Duration::Seconds(1), 0);
  const double accuracy = DistinctSetAccuracy(
      timely, clean.sink_records(), detect_batch, end_batch);
  std::printf(
      "\ncorrelated failure: detection %.1fs, active takeover %.2fs, "
      "passive recovery %.2fs\n"
      "tentative incident-alarm accuracy during recovery: %.3f "
      "(planner's worst-case OF: %.3f)\n",
      report.detection_time.seconds(), report.ActiveLatency().seconds(),
      report.PassiveLatency().seconds(), accuracy, plan->output_fidelity);

  // Which incidents were missed?
  const auto missed_window = schedule.IncidentsIn(detect_batch, end_batch);
  std::printf("incidents scheduled during the outage window: %zu\n",
              missed_window.size());
  return 0;
}
