// ppa_cli: file-driven experiment runner. Loads a topology spec and an
// optional scenario script, binds generic sliding-window operators (the
// operator semantics of the Fig. 6 synthetic workload), runs the simulated
// cluster under the chosen fault-tolerance mode, and writes a JSON report.
//
// Usage:
//   ppa_cli <topology.spec> [options]
//     --scenario <file>    timed failure script (see ParseScenario), or a
//                          JSON event array (see ScenarioToJson) — picked
//                          by content, so minimized chaos repro timelines
//                          replay directly
//     --mode <checkpoint|source-replay|active|ppa>   (default ppa)
//     --planner <dp|greedy|sa|exhaustive|random|expected>  PPA planner
//                          (default sa, the structure-aware heuristic)
//     --budget <n>         PPA replication budget (default: tasks/2)
//     --seconds <s>        simulated duration (default 60)
//     --window <batches>   operator window length (default 10)
//     --json <file>        write the job summary report here
//     --dot <file>         write the (plan-annotated) topology as DOT
//
// Shared experiment flags (parsed by bench::Driver):
//     --metrics_out <file> write the observability profile (metrics,
//                          recovery timelines, tentative windows, spans,
//                          fidelity timeseries, trace)
//     --chrome_trace_out <file>  write a Chrome/Perfetto Trace Event
//                          Format JSON (load in chrome://tracing or
//                          https://ui.perfetto.dev)
//     --jobs <n>           accepted for tooling uniformity (one run only)
//     --seed <n>           seed forwarded to the planner
//     --backend <sim|threads>  execution substrate: sim (default) is
//                          the deterministic simulator; threads runs
//                          the same job on the real worker-pool
//                          backend in wall-clock time
//     --recovery_mode <ppa|approx|hybrid>  exact recovery (default),
//                          bounded-error approximate recovery, or the
//                          hybrid (replicated tasks exact, rest
//                          approximate); see DESIGN.md §17
//
// Example spec + scenario live in the repository README.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "backend/execution_backend.h"
#include "bench/driver.h"
#include "exp/run_spec.h"
#include "planner/planner.h"
#include "report/experiment_report.h"
#include "runtime/scenario.h"
#include "runtime/streaming_job.h"
#include "topology/serialize.h"

namespace {

using namespace ppa;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot read '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

StatusOr<FtMode> ModeFromString(const std::string& s) {
  if (s == "checkpoint") {
    return FtMode::kCheckpoint;
  }
  if (s == "source-replay") {
    return FtMode::kSourceReplay;
  }
  if (s == "active") {
    return FtMode::kActiveReplication;
  }
  if (s == "ppa") {
    return FtMode::kPpa;
  }
  return InvalidArgument("unknown mode '" + s + "'");
}

int Run(int argc, char** argv) {
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <topology.spec> [options]\n", argv[0]);
    return 2;
  }
  std::string scenario_path, json_path, dot_path;
  FtMode mode = FtMode::kPpa;
  PlannerKind planner_kind = PlannerKind::kStructureAware;
  int budget = -1;
  double seconds = 60;
  int64_t window = 10;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (std::strcmp(argv[i], "--scenario") == 0) {
      scenario_path = need_value("--scenario");
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      auto parsed = ModeFromString(need_value("--mode"));
      PPA_CHECK_OK(parsed.status());
      mode = *parsed;
    } else if (std::strcmp(argv[i], "--planner") == 0) {
      auto parsed = PlannerKindFromString(need_value("--planner"));
      PPA_CHECK_OK(parsed.status());
      planner_kind = *parsed;
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      budget = std::stoi(need_value("--budget"));
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = std::stod(need_value("--seconds"));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window = std::stoll(need_value("--window"));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = need_value("--json");
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      dot_path = need_value("--dot");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  auto spec = ReadFile(argv[1]);
  PPA_CHECK_OK(spec.status());
  auto topo = ParseTopologySpec(*spec);
  if (!topo.ok()) {
    std::fprintf(stderr, "bad topology spec: %s\n",
                 topo.status().ToString().c_str());
    return 1;
  }
  std::printf("topology: %d operators, %d tasks\n", topo->num_operators(),
              topo->num_tasks());

  // --backend picks the substrate; the job only sees the
  // ExecutionBackend interface, so sim and threads drive identically.
  std::unique_ptr<backend::ExecutionBackend> be = driver.MakeBackend();
  JobConfig config;
  config.ft_mode = mode;
  config.recovery_mode = driver.recovery_mode();
  config.num_worker_nodes = std::max(4, topo->num_tasks());
  config.num_standby_nodes = std::max(2, topo->num_tasks() / 2);
  config.window_batches = window;
  if (Status valid = config.Validate(); !valid.ok()) {
    std::fprintf(stderr, "bad config: %s\n", valid.ToString().c_str());
    return 2;
  }
  StreamingJob job(*topo, config, JobRuntimeDeps(be.get()));

  // Generic bindings: deterministic synthetic sources at the spec's rates,
  // sliding-window aggregates with the spec's selectivities elsewhere.
  PPA_CHECK_OK(exp::BindGenericWorkload(*topo, config, &job));

  ReplicationPlan plan;
  plan.replicated = TaskSet(topo->num_tasks());
  if (mode == FtMode::kPpa) {
    if (budget < 0) {
      budget = topo->num_tasks() / 2;
    }
    PlannerOptions planner_options;
    planner_options.seed = driver.seed_or(planner_options.seed);
    auto planner = CreatePlanner(planner_kind, planner_options);
    auto planned = planner->Plan(PlanRequest(*topo, budget));
    PPA_CHECK_OK(planned.status());
    plan = *std::move(planned);
    std::printf("plan (%s): %d replicas, worst-case OF %.3f\n",
                std::string(planner->name()).c_str(), plan.resource_usage(),
                plan.output_fidelity);
    PPA_CHECK_OK(job.SetActiveReplicaSet(plan.replicated));
  }
  PPA_CHECK_OK(job.Start());

  ScenarioRunner runner(&job);
  if (!scenario_path.empty()) {
    auto script = ReadFile(scenario_path);
    PPA_CHECK_OK(script.status());
    // A scenario file is either a line-oriented script or a JSON event
    // array; a leading '[' can only be the latter.
    const size_t first = script->find_first_not_of(" \t\r\n");
    auto events = first != std::string::npos && (*script)[first] == '['
                      ? ParseScenarioJson(*script)
                      : ParseScenario(*topo, *script);
    if (!events.ok()) {
      std::fprintf(stderr, "bad scenario: %s\n",
                   events.status().ToString().c_str());
      return 1;
    }
    PPA_CHECK_OK(runner.Run(*std::move(events)));
  }

  be->RunUntil(TimePoint::Zero() + Duration::Seconds(seconds));
  if (!runner.FirstError().ok()) {
    std::fprintf(stderr, "scenario event failed: %s\n",
                 runner.FirstError().ToString().c_str());
  }

  std::printf("ran %.0f simulated seconds: %zu sink records, %zu "
              "recoveries\n",
              seconds, job.sink_records().size(),
              job.recovery_reports().size());
  for (const RecoveryReport& report : job.recovery_reports()) {
    std::printf("  failure @%.1fs: total %.2fs (active %.2fs, passive "
                "%.2fs)\n",
                report.failure_time.seconds(),
                report.TotalLatency().seconds(),
                report.ActiveLatency().seconds(),
                report.PassiveLatency().seconds());
  }

  if (!json_path.empty()) {
    PPA_CHECK_OK(WriteJsonFile(json_path, JobSummaryToJson(job)));
    std::printf("report written to %s\n", json_path.c_str());
  }
  driver.metrics().Add("profile", JobProfileToJson(job));
  driver.traces().Capture(JobChromeTraceToJson(job));
  driver.flight().Capture(JobFlightRecordToJson(job));
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << ToDot(*topo, mode == FtMode::kPpa ? &plan.replicated : nullptr);
    std::printf("DOT written to %s\n", dot_path.c_str());
  }
  return driver.Finish("ppa_cli");
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
