// Multi-tenant drill: 16 tenant jobs share one cluster through the
// ClusterService, pinned four-per-rack across four failure domains, and a
// rack outage hits four of them at once — the cross-job correlated
// failure the single-job paper setup cannot express. The drill prints
// the admission decisions, the recovery-arbitration order the service
// chose (priority first, then fidelity at risk, then tenant id), and
// each tenant's recovery outcome.
//
// Usage: multi_tenant_drill [fail_domain] [arbitration_slot_seconds] [report.json]
//
// With a third argument, the full service report (admission stats,
// per-tenant placement/output/recovery summary, arbitration log) is also
// written to the named file as JSON.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "report/experiment_report.h"
#include "service/cluster_service.h"
#include "backend/sim_backend.h"

int main(int argc, char** argv) {
  using namespace ppa;

  int fail_domain = 0;
  double slot_seconds = 2.0;
  std::string report_path;
  if (argc > 1) {
    fail_domain = std::atoi(argv[1]);
  }
  if (argc > 2) {
    slot_seconds = std::atof(argv[2]);
  }
  if (argc > 3) {
    report_path = argv[3];
  }

  backend::SimBackend loop;
  service::ServiceConfig config;
  config.num_worker_nodes = 12;
  config.num_standby_nodes = 8;
  config.worker_slots_per_node = 4;
  config.standby_slots_per_node = 2;
  config.arbitration_slot = Duration::Seconds(slot_seconds);
  service::ClusterService svc(config, &loop);

  // Racks of three nodes each: workers 0-11 form domains 0-3, standbys
  // 12-19 form domains 4-6.
  for (int node = 0; node < config.num_worker_nodes + config.num_standby_nodes;
       ++node) {
    PPA_CHECK_OK(svc.AssignDomain(node, node / 3));
  }

  // Tenant i runs a 3-task chain pinned to rack i % 4 with QoS priority
  // i / 4 (0 = most critical) and one actively replicated task.
  std::printf("submitting 16 tenants (4 racks x 4 priority classes)\n");
  for (int i = 0; i < 16; ++i) {
    const int rack = i % 4;
    service::TenantSpec spec;
    spec.name = "tenant" + std::to_string(i);
    spec.topology_spec =
        "operator src 1 rate=20\n"
        "operator mid 1\n"
        "operator sink 1\n"
        "edge src mid one-to-one\n"
        "edge mid sink one-to-one\n";
    spec.replica_budget = 1;
    spec.priority = i / 4;
    spec.initial_plan = {1};
    spec.worker_affinity = {3 * rack, 3 * rack + 1, 3 * rack + 2};
    auto id = svc.Submit(std::move(spec));
    PPA_CHECK_OK(id.status());
    auto phase = svc.PhaseOf(*id);
    PPA_CHECK_OK(phase.status());
    std::printf("  tenant %-2d rack %d priority %d -> %s\n", *id, rack,
                i / 4, std::string(service::TenantPhaseToString(*phase)).c_str());
  }

  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10));
  std::printf("\nt=10s: rack %d fails (hits every tenant pinned there)\n",
              fail_domain);
  PPA_CHECK_OK(svc.InjectDomainFailure(fail_domain));

  for (const service::ArbitrationDecision& decision : svc.arbitration_log()) {
    std::printf("arbitration @%.1fs:\n", decision.at.seconds());
    for (size_t rank = 0; rank < decision.order.size(); ++rank) {
      const service::ArbitrationHold& hold = decision.order[rank];
      std::printf(
          "  rank %zu: tenant %d (priority %d, fidelity at risk %.2f, "
          "%d failed tasks) hold %.1fs\n",
          rank, hold.claim.tenant, hold.claim.priority,
          hold.claim.fidelity_at_risk, hold.claim.failed_tasks,
          hold.hold.seconds());
    }
  }

  double horizon = 10;
  while (!svc.AllRecovered() && horizon < 400) {
    horizon += 5;
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(horizon));
  }
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(horizon + 30));

  std::printf("\nall tenants recovered by t=%.0fs\n", horizon);
  std::printf("%-10s %-9s %9s %11s %6s\n", "tenant", "phase", "sink recs",
              "recoveries", "holds");
  for (int id : svc.TenantIds()) {
    auto phase = svc.PhaseOf(id);
    PPA_CHECK_OK(phase.status());
    const StreamingJob* job = svc.job(id);
    std::printf("%-10s %-9s %9zu %11zu %6lld\n",
                svc.spec(id)->name.c_str(),
                std::string(service::TenantPhaseToString(*phase)).c_str(),
                job != nullptr ? job->sink_records().size() : 0,
                job != nullptr ? job->recovery_reports().size() : 0,
                static_cast<long long>(svc.HoldsApplied(id)));
  }

  const service::AdmissionStats& stats = svc.stats();
  std::printf(
      "\nadmissions: %lld submitted, %lld admitted, %lld queued, "
      "%lld rejected; %lld arbitration round(s)\n",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.admitted),
      static_cast<long long>(stats.queued),
      static_cast<long long>(stats.rejected),
      static_cast<long long>(stats.arbitrations));

  if (!report_path.empty()) {
    PPA_CHECK_OK(WriteJsonFile(report_path, svc.ReportToJson()));
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}
