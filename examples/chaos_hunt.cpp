// chaos_hunt: randomized fault-campaign runner. Generates seeded chaos
// cases (random topology, cluster, failure domains, replication plan,
// and fault timeline), executes each one deterministically, checks the
// built-in invariant oracles against a fault-free golden run, and
// optionally shrinks every failing schedule to a minimal replayable
// repro.
//
// Usage:
//   chaos_hunt [options]
//     --seeds <n>          cases to run (default 64)
//     --intensity <low|medium|high>   generator preset (default medium)
//     --minimize           shrink failing cases with delta debugging
//     --multi              hunt multi-tenant service cases instead of
//                          single jobs (2-8 tenants on one shared
//                          cluster; --minimize is ignored)
//     --replay <file>      run one chaos-case JSON instead of a campaign
//                          (a multi-tenant case when --multi is given)
//     --report <file>      write the campaign report as JSON
//     --repro_dir <dir>    write failing (minimized when available)
//                          cases as <dir>/repro_<seed>.json, each with
//                          its flight-recorder post-mortem beside it as
//                          <dir>/repro_<seed>_flight.json
//
// Shared experiment flags (parsed by bench::Driver):
//     --jobs <n>           worker threads; the report is byte-identical
//                          for any value
//     --seed <n>           base seed of the campaign (default 1)
//     --backend <sim|threads>  substrate the cases execute on; golden
//                          twins and the minimizer oracle always stay
//                          on the sim, so "threads" is a fault-injected
//                          parity sweep (DESIGN.md §16). Rejected (exit
//                          2) with --multi: multi-tenant campaigns run
//                          on the sim only
//     --recovery_mode <ppa|approx|hybrid>  recovery mode stamped into
//                          every generated case (DESIGN.md §17); the
//                          error-budget invariant checks the certified
//                          divergence bound under approx/hybrid
//     --progress           live per-case progress line on stderr (ticks
//                          in completion order; the report is unchanged)
//     --metrics_out <file> / --chrome_trace_out <file>
//
// Exit code: 0 when every case passed, 1 when any case failed or errored.
//
// Replay a minimized repro:
//   chaos_hunt --replay repro_1234.json

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/driver.h"
#include "chaos/campaign.h"
#include "chaos/chaos_run.h"
#include "chaos/multi_tenant.h"
#include "exp/progress.h"
#include "report/experiment_report.h"

namespace {

using namespace ppa;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot read '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

void PrintViolations(const std::vector<chaos::ChaosViolation>& violations) {
  for (const chaos::ChaosViolation& violation : violations) {
    std::printf("VIOLATION [%s] %s\n", violation.invariant.c_str(),
                violation.message.c_str());
  }
}

int ReplayMulti(const std::string& path) {
  auto text = ReadFile(path);
  PPA_CHECK_OK(text.status());
  auto mt_case = chaos::ParseMultiTenantCaseJson(*text);
  if (!mt_case.ok()) {
    std::fprintf(stderr, "bad multi-tenant case: %s\n",
                 mt_case.status().ToString().c_str());
    return 2;
  }
  auto report = chaos::RunMultiTenantCase(*mt_case);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed to execute: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("seed %llu: %zu tenants (%zu admitted, %zu queued), "
              "%zu/%zu events, %zu sink records, %zu recoveries, "
              "%zu arbitrations, ended @%.1fs\n",
              static_cast<unsigned long long>(report->seed),
              report->tenants_submitted, report->tenants_admitted,
              report->tenants_queued, report->events_executed,
              report->events_scheduled, report->sink_records,
              report->recoveries, report->arbitrations,
              report->end_seconds);
  if (report->violations.empty()) {
    std::printf("all invariants held\n");
    return 0;
  }
  PrintViolations(report->violations);
  return 1;
}

int Replay(const std::string& path) {
  auto text = ReadFile(path);
  PPA_CHECK_OK(text.status());
  auto chaos_case = chaos::ParseChaosCaseJson(*text);
  if (!chaos_case.ok()) {
    std::fprintf(stderr, "bad chaos case: %s\n",
                 chaos_case.status().ToString().c_str());
    return 2;
  }
  auto report = chaos::RunChaosCase(*chaos_case);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed to execute: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("seed %llu: %zu/%zu events executed, %zu sink records, "
              "%zu recoveries, ended @%.1fs\n",
              static_cast<unsigned long long>(report->seed),
              report->events_executed, report->events_scheduled,
              report->sink_records, report->recoveries,
              report->end_seconds);
  if (report->violations.empty()) {
    std::printf("all invariants held\n");
    return 0;
  }
  for (const chaos::ChaosViolation& violation : report->violations) {
    std::printf("VIOLATION [%s] %s\n", violation.invariant.c_str(),
                violation.message.c_str());
  }
  return 1;
}

int Run(int argc, char** argv) {
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);
  chaos::CampaignOptions options;
  options.intensity = chaos::ChaosIntensity::Medium();
  // --backend=threads turns the campaign into a fault-injected parity
  // sweep: cases execute on the threaded backend while golden twins and
  // the minimizer oracle stay on the deterministic sim (DESIGN.md §16).
  options.backend = driver.backend_kind();
  // --recovery_mode=approx/hybrid stamps every generated case with the
  // bounded-error recovery contract; the error-budget invariant then
  // holds measured loss to the certified bound (DESIGN.md §17).
  options.recovery_mode = driver.recovery_mode();
  bool multi = false;
  std::string replay_path, report_path, repro_dir;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      options.num_seeds = std::stoi(need_value("--seeds"));
    } else if (std::strcmp(argv[i], "--intensity") == 0) {
      auto parsed =
          chaos::ChaosIntensityFromString(need_value("--intensity"));
      PPA_CHECK_OK(parsed.status());
      options.intensity = *parsed;
    } else if (std::strcmp(argv[i], "--minimize") == 0) {
      options.minimize = true;
    } else if (std::strcmp(argv[i], "--multi") == 0) {
      multi = true;
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = need_value("--replay");
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report_path = need_value("--report");
    } else if (std::strcmp(argv[i], "--repro_dir") == 0) {
      repro_dir = need_value("--repro_dir");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (!replay_path.empty()) {
    return multi ? ReplayMulti(replay_path) : Replay(replay_path);
  }

  options.base_seed = driver.seed_or(1);
  options.jobs = driver.jobs();
  // The shared --progress meter ticks once per finished case from
  // whatever worker ran it, serialized under the meter's lock. stderr
  // only: the report and stdout stay byte-identical with or without it.
  options.progress = driver.StartProgress(options.num_seeds, "case");
  if (multi &&
      options.backend != backend::BackendKind::kSim) {
    // Multi-tenant cases drive the whole service + tenants on one sim
    // strand; a threaded sweep for them is future work. Hard error, not
    // a warning: silently running on the sim would mislabel the report
    // as a threads parity sweep.
    std::fprintf(stderr,
                 "--multi does not support --backend=%s; multi-tenant "
                 "campaigns run on the sim only\n",
                 backend::BackendKindToString(options.backend).c_str());
    return 2;
  }
  if (multi) {
    auto campaign = chaos::RunMultiTenantCampaign(options);
    PPA_CHECK_OK(campaign.status());
    for (const chaos::MultiTenantCampaignCaseResult& result :
         campaign->results) {
      if (!result.failed()) {
        continue;
      }
      if (!result.error.empty()) {
        std::printf("case %d (seed %llu): ERROR %s\n", result.index,
                    static_cast<unsigned long long>(result.seed),
                    result.error.c_str());
      } else {
        for (const chaos::ChaosViolation& violation :
             result.report.violations) {
          std::printf("case %d (seed %llu): VIOLATION [%s] %s\n",
                      result.index,
                      static_cast<unsigned long long>(result.seed),
                      violation.invariant.c_str(),
                      violation.message.c_str());
        }
      }
      if (!repro_dir.empty()) {
        const std::string path = repro_dir + "/repro_" +
                                 std::to_string(result.seed) + ".json";
        PPA_CHECK_OK(WriteJsonFile(
            path, chaos::MultiTenantCaseToJson(result.mt_case)));
        std::printf("  repro written to %s\n", path.c_str());
      }
    }
    std::printf("%d/%d multi-tenant cases passed (%d violations)\n",
                options.num_seeds - campaign->num_failed,
                options.num_seeds, campaign->num_violations);
    if (!report_path.empty()) {
      PPA_CHECK_OK(WriteJsonFile(
          report_path, chaos::MultiTenantCampaignReportToJson(*campaign)));
      std::printf("report written to %s\n", report_path.c_str());
    }
    driver.metrics().Add(
        "campaign", chaos::MultiTenantCampaignReportToJson(*campaign));
    const int driver_exit = driver.Finish("chaos_hunt");
    if (driver_exit != 0) {
      return driver_exit;
    }
    return campaign->num_failed == 0 ? 0 : 1;
  }
  auto campaign = chaos::RunCampaign(options);
  PPA_CHECK_OK(campaign.status());

  for (const chaos::CampaignCaseResult& result : campaign->results) {
    if (!result.failed()) {
      continue;
    }
    if (!result.error.empty()) {
      std::printf("case %d (seed %llu): ERROR %s\n", result.index,
                  static_cast<unsigned long long>(result.seed),
                  result.error.c_str());
    } else {
      for (const chaos::ChaosViolation& violation :
           result.report.violations) {
        std::printf("case %d (seed %llu): VIOLATION [%s] %s\n",
                    result.index,
                    static_cast<unsigned long long>(result.seed),
                    violation.invariant.c_str(),
                    violation.message.c_str());
      }
    }
    if (!repro_dir.empty()) {
      const chaos::ChaosCase& repro =
          result.has_minimized ? result.minimized : result.chaos_case;
      const std::string path = repro_dir + "/repro_" +
                               std::to_string(result.seed) + ".json";
      PPA_CHECK_OK(WriteJsonFile(path, chaos::ChaosCaseToJson(repro)));
      std::printf("  repro written to %s\n", path.c_str());
      // The post-mortem matching the written repro: the minimized
      // rerun's flight record when the repro is minimized, the original
      // case's otherwise.
      const JsonValue& flight = result.has_minimized &&
                                        !result.minimized_flight_record
                                             .is_null()
                                    ? result.minimized_flight_record
                                    : result.report.flight_record;
      if (!flight.is_null()) {
        const std::string flight_path =
            repro_dir + "/repro_" + std::to_string(result.seed) +
            "_flight.json";
        PPA_CHECK_OK(WriteJsonFile(flight_path, flight));
        std::printf("  flight record written to %s\n", flight_path.c_str());
      }
    }
  }
  std::printf("%d/%d cases passed (%d violations)\n",
              options.num_seeds - campaign->num_failed, options.num_seeds,
              campaign->num_violations);
  if (!report_path.empty()) {
    PPA_CHECK_OK(
        WriteJsonFile(report_path, chaos::CampaignReportToJson(*campaign)));
    std::printf("report written to %s\n", report_path.c_str());
  }
  driver.metrics().Add("campaign", chaos::CampaignReportToJson(*campaign));
  const int driver_exit = driver.Finish("chaos_hunt");
  if (driver_exit != 0) {
    return driver_exit;
  }
  return campaign->num_failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
