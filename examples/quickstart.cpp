// Quickstart: build a small query topology, inspect its MC-trees and
// output-fidelity metric, compute partially active replication plans with
// all three planners, and run the topology through the simulated engine
// with a correlated failure under the best plan.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "engine/operators.h"
#include "fidelity/mc_tree.h"
#include "fidelity/metrics.h"
#include "planner/planner.h"
#include "runtime/streaming_job.h"
#include "backend/sim_backend.h"
#include "topology/topology.h"
#include "workloads/synthetic_recovery.h"

int main() {
  using namespace ppa;

  // ---------------------------------------------------------------- 1 --
  // A topology: two sources joined by a windowed join, then aggregated.
  //   logs(4) --merge--> clean(2) --one-to-one--+
  //                                             +--> join(2) --merge--> out(1)
  //   events(2) -------------one-to-one---------+
  TopologyBuilder builder;
  OperatorId logs = builder.AddOperator("logs", 4);
  OperatorId events = builder.AddOperator("events", 2);
  OperatorId clean = builder.AddOperator("clean", 2,
                                         InputCorrelation::kIndependent, 0.8);
  OperatorId join = builder.AddOperator("join", 2,
                                        InputCorrelation::kCorrelated, 0.5);
  OperatorId out = builder.AddOperator("out", 1,
                                       InputCorrelation::kIndependent, 1.0);
  builder.Connect(logs, clean, PartitionScheme::kMerge)
      .Connect(clean, join, PartitionScheme::kOneToOne)
      .Connect(events, join, PartitionScheme::kOneToOne)
      .Connect(join, out, PartitionScheme::kMerge)
      .SetSourceRate(logs, 2000.0)
      .SetSourceRate(events, 500.0);
  auto topo_or = builder.Build();
  if (!topo_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topo_or.status().ToString().c_str());
    return 1;
  }
  Topology topo = *std::move(topo_or);
  std::printf("topology: %d operators, %d tasks\n", topo.num_operators(),
              topo.num_tasks());

  // ---------------------------------------------------------------- 2 --
  // Fidelity analytics: MC-trees and the OF metric.
  auto trees = EnumerateMcTrees(topo);
  std::printf("MC-trees: %zu\n", trees->size());
  TaskSet one_failure(topo.num_tasks());
  one_failure.Add(topo.op(clean).tasks[0]);
  std::printf("OF if clean[0] fails: %.3f (IC would say %.3f)\n",
              ComputeOutputFidelity(topo, one_failure),
              ComputeInternalCompleteness(topo, one_failure));

  // ---------------------------------------------------------------- 3 --
  // Plan active replication for a budget of 5 tasks with each planner.
  const int budget = 5;
  for (PlannerKind kind : {PlannerKind::kDynamicProgramming,
                           PlannerKind::kStructureAware,
                           PlannerKind::kGreedy}) {
    auto planner = CreatePlanner(kind);
    auto plan = planner->Plan(PlanRequest(topo, budget));
    if (!plan.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(planner->name()).c_str(),
                   plan.status().ToString().c_str());
      continue;
    }
    std::printf("%-7s budget=%d -> worst-case OF %.3f, tasks:",
                std::string(planner->name()).c_str(), budget,
                plan->output_fidelity);
    for (TaskId t : plan->replicated.ToVector()) {
      std::printf(" %s", topo.TaskLabel(t).c_str());
    }
    std::printf("\n");
  }

  // ---------------------------------------------------------------- 4 --
  // Run it: PPA fault tolerance with the structure-aware plan, correlated
  // failure at t=20s, tentative outputs while passive recovery runs.
  auto sa_plan = CreatePlanner(PlannerKind::kStructureAware)
                     ->Plan(PlanRequest(topo, budget));
  backend::SimBackend loop;
  JobConfig config;
  config.ft_mode = FtMode::kPpa;
  config.num_worker_nodes = 11;
  config.num_standby_nodes = 6;
  config.checkpoint_interval = Duration::Seconds(10);
  StreamingJob job(topo, config, JobRuntimeDeps(&loop));
  PPA_CHECK_OK(job.BindSource(logs, [] {
    return std::make_unique<SyntheticSource>(200, 512, 1);
  }));
  PPA_CHECK_OK(job.BindSource(events, [] {
    return std::make_unique<SyntheticSource>(50, 512, 2);
  }));
  PPA_CHECK_OK(job.BindOperator(clean, [] {
    return std::make_unique<SelectivityOperator>(0.8);
  }));
  PPA_CHECK_OK(job.BindOperator(join, [] {
    return std::make_unique<SlidingWindowAggregateOperator>(10, 0.5);
  }));
  PPA_CHECK_OK(job.BindOperator(out, [] {
    return std::make_unique<SlidingWindowAggregateOperator>(10, 1.0);
  }));
  PPA_CHECK_OK(job.SetActiveReplicaSet(sa_plan->replicated));
  PPA_CHECK_OK(job.Start());

  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(20));
  PPA_CHECK_OK(job.InjectCorrelatedFailure(/*include_sources=*/true));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));

  PPA_CHECK(job.recovery_reports().size() == 1);
  const RecoveryReport& report = job.recovery_reports()[0];
  std::printf(
      "\ncorrelated failure at t=20s, detected at %s\n"
      "  active takeovers finished after  %8.3f s\n"
      "  passive recoveries finished after %7.3f s\n",
      report.detection_time.ToString().c_str(),
      report.ActiveLatency().seconds(), report.PassiveLatency().seconds());
  int64_t tentative = 0, total = 0;
  for (const SinkRecord& r : job.sink_records()) {
    ++total;
    tentative += r.tentative;
  }
  std::printf("sink produced %lld records, %lld of them tentative\n",
              static_cast<long long>(total),
              static_cast<long long>(tentative));
  return 0;
}
