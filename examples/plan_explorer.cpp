// Plan explorer: generate random topologies (the Sec. VI-C generator) and
// compare the planners' worst-case output fidelity across replication
// budgets.
//
// Usage: plan_explorer [seed] [structured|full] [join_fraction]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/random.h"
#include "planner/dp_planner.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

int main(int argc, char** argv) {
  using namespace ppa;

  uint64_t seed = 42;
  RandomTopologyOptions options;
  options.min_operators = 5;
  options.max_operators = 8;
  options.min_parallelism = 1;
  options.max_parallelism = 4;
  options.join_fraction = 0.5;
  if (argc > 1) {
    seed = static_cast<uint64_t>(std::strtoull(argv[1], nullptr, 10));
  }
  if (argc > 2 && std::strcmp(argv[2], "full") == 0) {
    options.kind = RandomTopologyOptions::Kind::kFull;
  }
  if (argc > 3) {
    options.join_fraction = std::strtod(argv[3], nullptr);
  }

  Rng rng(seed);
  auto topo = GenerateRandomTopology(options, &rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 topo.status().ToString().c_str());
    return 1;
  }

  std::printf("random topology (seed %llu): %d operators, %d tasks\n",
              static_cast<unsigned long long>(seed), topo->num_operators(),
              topo->num_tasks());
  for (const OperatorInfo& oi : topo->operators()) {
    std::printf("  %-6s parallelism %d %s\n", oi.name.c_str(),
                oi.parallelism,
                oi.correlation == InputCorrelation::kCorrelated ? "(join)"
                                                                : "");
  }
  for (const StreamEdge& e : topo->edges()) {
    std::printf("  %s -> %s  [%s]\n", topo->op(e.from).name.c_str(),
                topo->op(e.to).name.c_str(),
                std::string(PartitionSchemeToString(e.scheme)).c_str());
  }

  DpPlanner dp;
  StructureAwarePlanner sa;
  GreedyPlanner greedy;
  std::printf("\n%-8s %10s %10s %10s\n", "budget", "dp", "sa", "greedy");
  for (int pct = 10; pct <= 80; pct += 10) {
    const int budget = topo->num_tasks() * pct / 100;
    auto dp_plan = dp.Plan(PlanRequest(*topo, budget));
    auto sa_plan = sa.Plan(PlanRequest(*topo, budget));
    auto greedy_plan = greedy.Plan(PlanRequest(*topo, budget));
    std::printf("%3d%% %3d ", pct, budget);
    if (dp_plan.ok()) {
      std::printf("%10.4f", dp_plan->output_fidelity);
    } else {
      std::printf("%10s", "n/a");
    }
    std::printf(" %10.4f %10.4f\n",
                sa_plan.ok() ? sa_plan->output_fidelity : -1.0,
                greedy_plan.ok() ? greedy_plan->output_fidelity : -1.0);
  }
  std::printf("\n(dp is optimal; n/a means the candidate set exceeded the "
              "exponential-search cap)\n");
  return 0;
}
