// Failure drill: a rack outage on the Fig. 6 workload under PPA, end to
// end — domain-aware replica placement, heartbeat detection, active
// takeovers, tentative outputs, passive recovery, and finally the
// Borealis-style reconciliation of the tentative window.
//
// Usage: failure_drill [replication_budget] [fail_at_seconds] [scenario]
//
// With a third argument, the named scenario file (line-oriented script or
// JSON event array, see runtime/scenario.h) replaces the built-in rack
// outage: its events are scheduled at their own offsets and the drill
// reports whatever recoveries they caused.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "planner/structure_aware_planner.h"
#include "runtime/domain_analysis.h"
#include "runtime/scenario.h"
#include "runtime/streaming_job.h"
#include "backend/sim_backend.h"
#include "workloads/synthetic_recovery.h"

int main(int argc, char** argv) {
  using namespace ppa;

  int budget = 12;
  double fail_at = 40.0;
  std::string scenario_path;
  if (argc > 1) {
    budget = std::atoi(argv[1]);
  }
  if (argc > 2) {
    fail_at = std::atof(argv[2]);
  }
  if (argc > 3) {
    scenario_path = argv[3];
  }

  auto workload = MakeSyntheticRecoveryWorkload(/*rate_per_source_task=*/500,
                                                /*window_batches=*/10);
  PPA_CHECK_OK(workload.status());

  backend::SimBackend loop;
  JobConfig config;
  config.ft_mode = FtMode::kPpa;
  config.num_worker_nodes = 19;
  config.num_standby_nodes = 15;
  config.checkpoint_interval = Duration::Seconds(10);
  config.detection_interval = Duration::Seconds(5);
  config.window_batches = 10;
  config.delta_checkpoints = true;  // Cheap frequent checkpoints.
  StreamingJob job(workload->topo, config, JobRuntimeDeps(&loop));
  PPA_CHECK_OK(BindSyntheticRecoveryWorkload(*workload, &job));
  auto synthetic_nodes = PlaceSyntheticRecoveryWorkload(*workload, &job);
  PPA_CHECK_OK(synthetic_nodes.status());

  // Racks: the 4 source nodes are one rack, the 15 synthetic worker nodes
  // form 3 racks of 5, standby nodes 3 more. Replica placement avoids the
  // primary's rack. (Rack ids start at 100: unassigned nodes default to a
  // singleton domain equal to their node id.)
  for (int node = 0; node < 4; ++node) {
    PPA_CHECK_OK(job.cluster().AssignDomain(node, 100));
  }
  for (size_t i = 0; i < synthetic_nodes->size(); ++i) {
    PPA_CHECK_OK(job.cluster().AssignDomain(
        (*synthetic_nodes)[i], 101 + static_cast<int>(i) / 5));
  }
  for (int i = 0; i < config.num_standby_nodes; ++i) {
    PPA_CHECK_OK(job.cluster().AssignDomain(config.num_worker_nodes + i,
                                            110 + i / 5));
  }

  StructureAwarePlanner planner;
  auto plan = planner.Plan(PlanRequest(workload->topo, budget));
  PPA_CHECK_OK(plan.status());
  std::printf("plan: %d replicas (budget %d), worst-case OF %.3f\n",
              plan->resource_usage(), budget, plan->output_fidelity);
  PPA_CHECK_OK(job.SetActiveReplicaSet(plan->replicated));
  PPA_CHECK_OK(job.Start());

  // Placement-aware what-if: which rack outage would hurt most?
  auto impacts =
      AnalyzeAllDomains(workload->topo, job.cluster(), plan->replicated);
  PPA_CHECK_OK(impacts.status());
  std::printf("rack outage what-if (worst first):\n");
  for (const DomainFailureImpact& impact : *impacts) {
    std::printf(
        "  rack %d: %d primaries, %d covered by replicas, tentative OF "
        "%.3f\n",
        impact.domain, impact.tasks_hosted, impact.tasks_covered,
        impact.fidelity);
  }

  ScenarioRunner scenario(&job);
  if (scenario_path.empty()) {
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(fail_at));
    std::printf("t=%.0fs: rack 102 loses power (5 worker nodes)\n", fail_at);
    PPA_CHECK_OK(job.InjectDomainFailure(102));
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(fail_at + 90));
    PPA_CHECK(job.recovery_reports().size() == 1);
  } else {
    std::ifstream in(scenario_path);
    PPA_CHECK(in.good());
    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string script = contents.str();
    const size_t first = script.find_first_not_of(" \t\r\n");
    auto events = first != std::string::npos && script[first] == '['
                      ? ParseScenarioJson(script)
                      : ParseScenario(workload->topo, script);
    PPA_CHECK_OK(events.status());
    double last_at = 0;
    for (const ScenarioEvent& event : *events) {
      last_at = std::max(last_at, event.at.seconds());
    }
    std::printf("running scenario %s (%zu events)\n", scenario_path.c_str(),
                events->size());
    PPA_CHECK_OK(scenario.Run(*std::move(events)));
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(last_at + 90));
    if (!scenario.FirstError().ok()) {
      std::printf("first failed event: %s\n",
                  scenario.FirstError().ToString().c_str());
    }
  }

  for (const RecoveryReport& report : job.recovery_reports()) {
    int active = 0, passive = 0;
    for (const TaskRecoverySpec& spec : report.specs) {
      (spec.kind == RecoveryKind::kActiveReplica ? active : passive) += 1;
    }
    std::printf(
        "detected at t=%.0fs; %d tasks failed (%d active takeover, %d "
        "passive)\n"
        "  active takeovers done in %.2fs, passive recovery in %.2fs\n",
        report.detection_time.seconds(),
        static_cast<int>(report.specs.size()), active, passive,
        report.ActiveLatency().seconds(), report.PassiveLatency().seconds());
  }

  int64_t tentative = 0;
  for (const SinkRecord& r : job.sink_records()) {
    tentative += r.tentative;
  }
  std::printf("tentative sink records during recovery: %lld\n",
              static_cast<long long>(tentative));

  if (tentative > 0) {
    auto recon = job.ReconcileTentativeOutputs();
    if (recon.status().code() == StatusCode::kFailedPrecondition) {
      // A scripted `reconcile` event already consumed the window.
      std::printf("tentative outputs already reconciled by the scenario\n");
      return 0;
    }
    PPA_CHECK_OK(recon.status());
    std::printf(
        "reconciliation: re-executed batches %lld-%lld "
        "(%lld tuples reprocessed)\n"
        "  issued %zu corrected sink records; %lld corrected outputs had "
        "no tentative\n  counterpart and %lld tentative outputs were "
        "superseded\n",
        static_cast<long long>(recon->from_batch),
        static_cast<long long>(recon->to_batch),
        static_cast<long long>(recon->reprocessed_tuples),
        recon->corrected.size(),
        static_cast<long long>(recon->missed_outputs),
        static_cast<long long>(recon->spurious_outputs));
  }
  return 0;
}
