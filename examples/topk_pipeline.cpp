// Q1 example: the hierarchical top-k pipeline over a WorldCup'98-style
// access log (Sec. VI-B of the paper). Runs the query cleanly, then again
// with a correlated failure under a PPA plan, and prints the per-batch
// accuracy of the tentative top-k while passive recovery is in progress.

#include <cstdio>
#include <vector>

#include "planner/structure_aware_planner.h"
#include "runtime/streaming_job.h"
#include "backend/sim_backend.h"
#include "workloads/accuracy.h"
#include "workloads/topk.h"

namespace {

ppa::JobConfig TopKConfig() {
  ppa::JobConfig config;
  config.ft_mode = ppa::FtMode::kPpa;
  config.num_worker_nodes = 21;
  config.num_standby_nodes = 21;
  config.checkpoint_interval = ppa::Duration::Seconds(10);
  config.detection_interval = ppa::Duration::Seconds(5);
  // Slow recovery so the tentative phase is clearly visible.
  config.recovery.replay_rate_tuples_per_sec = 500.0;
  config.recovery.task_restart_delay = ppa::Duration::Seconds(3);
  return config;
}

}  // namespace

int main() {
  using namespace ppa;

  WorldCupSource::Options source;
  source.tuples_per_batch_per_task = 1000;
  source.url_population = 2000;
  auto workload = MakeTopKWorkload(source, /*count_window_batches=*/15,
                                   /*k=*/100);
  PPA_CHECK_OK(workload.status());
  std::printf("Q1 topology: %d tasks (8 log servers -> 8 counters -> 4 "
              "mergers -> 1 global top-100)\n",
              workload->topo.num_tasks());

  // Reference run without failures.
  backend::SimBackend clean_loop;
  StreamingJob clean(workload->topo, TopKConfig(),
                     JobRuntimeDeps(&clean_loop));
  PPA_CHECK_OK(BindTopKWorkload(*workload, &clean));
  PPA_CHECK_OK(clean.Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(70));

  // Failure run: replicate 40% of the tasks with the structure-aware
  // planner, then kill every primary at t=25s.
  StructureAwarePlanner planner;
  auto plan = planner.Plan(
      PlanRequest(workload->topo, workload->topo.num_tasks() * 2 / 5));
  PPA_CHECK_OK(plan.status());
  std::printf("structure-aware plan: %d replicas, worst-case OF %.3f\n",
              plan->resource_usage(), plan->output_fidelity);

  backend::SimBackend loop;
  StreamingJob job(workload->topo, TopKConfig(), JobRuntimeDeps(&loop));
  PPA_CHECK_OK(BindTopKWorkload(*workload, &job));
  PPA_CHECK_OK(job.SetActiveReplicaSet(plan->replicated));
  PPA_CHECK_OK(job.Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(25.2));
  PPA_CHECK_OK(job.InjectCorrelatedFailure(/*include_sources=*/true));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(70));

  PPA_CHECK(job.recovery_reports().size() == 1);
  const RecoveryReport& report = job.recovery_reports()[0];
  std::printf("failure detected at %.1fs; active takeover %.2fs; passive "
              "recovery %.2fs\n",
              report.detection_time.seconds(),
              report.ActiveLatency().seconds(),
              report.PassiveLatency().seconds());

  const auto timely =
      FilterTimely(job.sink_records(), Duration::Seconds(1), 0);
  std::printf("\nper-batch tentative top-100 accuracy vs clean run:\n");
  const int64_t detect_batch =
      report.detection_time.micros() / Duration::Seconds(1).micros();
  const int64_t end_batch =
      (report.detection_time + report.PassiveLatency()).micros() /
      Duration::Seconds(1).micros();
  for (int64_t b = detect_batch; b <= std::min<int64_t>(end_batch, 69);
       b += 3) {
    const double acc =
        PerBatchSetAccuracy(timely, clean.sink_records(), b, b + 2);
    std::printf("  batches %2lld-%2lld: %.3f\n", static_cast<long long>(b),
                static_cast<long long>(b + 2), acc);
  }
  const double overall = PerBatchSetAccuracy(
      timely, clean.sink_records(), detect_batch, end_batch);
  std::printf("overall tentative accuracy: %.3f (planner predicted OF "
              "%.3f)\n",
              overall, plan->output_fidelity);
  return 0;
}
